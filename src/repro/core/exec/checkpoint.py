"""Checkpoint/resume: an on-disk journal of completed work units.

A multi-hour study run must survive being killed.  As the engine finishes
each work unit it appends ``(key, result)`` to a journal file; a later run
pointed at the same file skips every journaled unit and recomputes only
what is missing.  Because unit results are pure functions of
``(corpus seed, capture window, unit identity)`` — the engine's
determinism contract — replaying a journaled result is bit-for-bit
indistinguishable from recomputing it.

Keys are SHA-256 digests over exactly those inputs, so a journal written
for a different seed, capture window, or chunking simply never hits (a
seed mismatch is additionally rejected up front via the file header, the
friendlier failure).  The file is an append-only pickle stream; a
truncated final record — the process died mid-write — is discarded on
load rather than poisoning the run.

Corrupt records in the *middle* of the stream (bit rot, a partial write
that later appends papered over) are survivable too: the loader resyncs
at the next parseable record boundary instead of silently dropping
everything after the first bad byte, counts what it had to discard
(:attr:`StudyCheckpoint.records_discarded` /
:attr:`~StudyCheckpoint.records_recovered`), reports the loss through the
telemetry recorder when one is active, and raises a ``RuntimeWarning`` —
mid-file data loss must never be silent, because every discarded record
is a work unit the run will silently recompute.

Only *corruption-shaped* failures are treated this way
(:data:`_CORRUPTION_ERRORS`); a programming error raised while
deserialising a record — say ``AttributeError`` from a renamed result
class — propagates instead of being discarded as bit rot.
"""

from __future__ import annotations

import hashlib
import io
import pickle
import warnings
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core import obs

_MAGIC = "repro-study-checkpoint"
_VERSION = 1

#: What loading a *damaged* journal region can raise: truncated or
#: bit-rotted pickle streams (``UnpicklingError`` / ``EOFError`` / the
#: container errors) and records failing :func:`_validate_record`'s shape
#: check (``ValueError``).  ``AttributeError`` / ``ImportError`` are
#: deliberately absent — a journaled payload referencing a renamed class
#: is a code bug, not bit rot, and discarding it as "corruption" would
#: silently recompute every unit while hiding the rename.
_CORRUPTION_ERRORS = (
    pickle.UnpicklingError,
    ValueError,
    EOFError,
    TypeError,
    KeyError,
    IndexError,
)


def unit_key(seed: int, sleep_s: float, unit) -> str:
    """Stable journal key for one work unit under one study configuration."""
    kind, platform, dataset, indices, extra = unit
    identity = repr(
        (int(seed), float(sleep_s), kind, platform, dataset, tuple(indices), extra)
    )
    return hashlib.sha256(identity.encode("utf-8")).hexdigest()


def split_unit(unit) -> List[tuple]:
    """Split a unit into per-app solo units (quarantine / solo lookup).

    Circumvention units carry per-index pinned sets in ``extra``; those
    are sliced along with the indices, like
    :meth:`~repro.core.exec.engine.ExecutionEngine.units_for` does.
    """
    kind, platform, dataset, indices, extra = unit
    if kind == "circumvent":
        return [
            (kind, platform, dataset, (index,), (pins,))
            for index, pins in zip(indices, extra)
        ]
    return [(kind, platform, dataset, (index,), extra) for index in indices]


def _validate_record(record) -> tuple:
    """Shape-check one journal record; raise ``ValueError`` otherwise.

    Records are ``(key, payload)`` with a 64-hex-digit key and a list
    payload.  Resync candidates that deserialise but are not records
    (pickle opcodes can occur inside payload bytes) are rejected here.
    """
    if not (isinstance(record, tuple) and len(record) == 2):
        raise ValueError("not a journal record")
    key, payload = record
    if not (isinstance(key, str) and len(key) == 64 and isinstance(payload, list)):
        raise ValueError("not a journal record")
    return key, payload


def _next_record_offset(data: bytes, start: int) -> Optional[int]:
    """First offset >= ``start`` where a whole valid record parses.

    Every record was written by its own ``pickle.dump`` call and so
    begins with the ``PROTO`` opcode (``0x80``); candidate offsets are
    its occurrences.  A candidate only counts when a full record loads
    from it *and* passes the shape check — stray ``0x80`` bytes inside a
    corrupt region or a payload fail one of the two.
    """
    position = data.find(b"\x80", start)
    while position != -1:
        fh = io.BytesIO(data)
        fh.seek(position)
        try:
            _validate_record(pickle.load(fh))
        except _CORRUPTION_ERRORS:
            pass
        else:
            return position
        position = data.find(b"\x80", position + 1)
    return None


class StudyCheckpoint:
    """Journal of completed unit results for one study configuration.

    Args:
        path: journal file (created on first record).
        seed: the corpus/study seed the journal is bound to.
        sleep_s: the dynamic capture window (results depend on it).
    """

    def __init__(self, path: Union[str, Path], seed: int, sleep_s: float):
        self.path = Path(path)
        self.seed = int(seed)
        self.sleep_s = float(sleep_s)
        self._cache: Dict[str, list] = {}
        self._fh = None
        #: Good records loaded from an existing journal.
        self.records_recovered = 0
        #: Corrupt regions skipped while loading.  Each region destroyed at
        #: least one record; the exact count inside a region is unknowable
        #: (the pickle stream is not self-delimiting), so this is a floor.
        self.records_discarded = 0
        #: True when a corrupt region had good records *after* it — the
        #: silent-data-loss case the resync exists for (a trailing
        #: truncated record is expected after a kill and not flagged).
        self.mid_file_corruption = False

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "StudyCheckpoint":
        return self.open()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def open(self) -> "StudyCheckpoint":
        """Load any existing journal and open the file for appending."""
        if self._fh is not None:
            return self
        self._load_existing()
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._fh = open(self.path, "ab")
        if fresh:
            pickle.dump((_MAGIC, _VERSION, self.seed), self._fh)
            self._fh.flush()
        return self

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def _load_existing(self) -> None:
        if not self.path.exists() or self.path.stat().st_size == 0:
            return
        data = self.path.read_bytes()
        fh = io.BytesIO(data)
        try:
            header = pickle.load(fh)
        except (EOFError, pickle.UnpicklingError):
            raise ValueError(f"{self.path} is not a study checkpoint")
        if (
            not isinstance(header, tuple)
            or len(header) != 3
            or header[0] != _MAGIC
            or header[1] != _VERSION
        ):
            raise ValueError(f"{self.path} is not a study checkpoint")
        if header[2] != self.seed:
            raise ValueError(
                f"checkpoint {self.path} was written for seed "
                f"{header[2]}, not {self.seed}"
            )

        recovered_after_corruption = 0
        saw_corruption = False
        while fh.tell() < len(data):
            offset = fh.tell()
            try:
                record = pickle.load(fh)
                key, payload = _validate_record(record)
            except _CORRUPTION_ERRORS:
                # A record that does not load or does not look like one.
                # EOFError here is NOT a clean end-of-journal (the loop
                # condition already handles that): it is a truncated
                # record.  Either way, skip to the next offset where a
                # whole valid record parses; if none exists the bad
                # region runs to EOF (the ordinary killed-mid-write tail).
                self.records_discarded += 1
                resume_at = _next_record_offset(data, offset + 1)
                if resume_at is None:
                    break
                saw_corruption = True
                fh.seek(resume_at)
                continue
            self._cache[key] = payload
            self.records_recovered += 1
            if saw_corruption:
                recovered_after_corruption += 1

        self.mid_file_corruption = recovered_after_corruption > 0
        if self.records_discarded:
            obs.count("journal.records.discarded", self.records_discarded)
        obs.count("journal.records.recovered", self.records_recovered)
        if self.mid_file_corruption:
            warnings.warn(
                f"checkpoint {self.path}: {self.records_discarded} corrupt "
                f"record(s) discarded mid-journal; "
                f"{recovered_after_corruption} good record(s) after the "
                "corruption were recovered (their units will not be "
                "recomputed, the discarded ones will)",
                RuntimeWarning,
                stacklevel=2,
            )

    # -- journal access ----------------------------------------------------

    @property
    def completed_units(self) -> int:
        return len(self._cache)

    def key_for(self, unit) -> str:
        return unit_key(self.seed, self.sleep_s, unit)

    def lookup(self, unit) -> Optional[list]:
        """Journaled result for ``unit``, or None.

        A multi-app unit whose own key misses is additionally composed
        from journaled *solo* results (a previous run may have completed
        its apps one-by-one in quarantine); composition succeeds only when
        every app is present, preserving in-unit order.
        """
        hit = self._cache.get(self.key_for(unit))
        if hit is not None:
            return list(hit)
        _, _, _, indices, _ = unit
        if len(indices) <= 1:
            return None
        merged: list = []
        for solo in split_unit(unit):
            solo_hit = self._cache.get(self.key_for(solo))
            if solo_hit is None:
                return None
            merged.extend(solo_hit)
        return merged

    def record(self, unit, payload: list) -> None:
        """Append one completed unit result (idempotent, flushed)."""
        if self._fh is None:
            self.open()
        key = self.key_for(unit)
        if key in self._cache:
            return
        payload = list(payload)
        self._cache[key] = payload
        pickle.dump((key, payload), self._fh)
        self._fh.flush()
