"""The parallel study execution engine.

Shards per-app work units — static scans, two-setting dynamic runs,
circumvention sweeps — across a :class:`~concurrent.futures.ProcessPoolExecutor`
while keeping study results bit-for-bit identical to a serial run.

Determinism contract
--------------------

Every work unit is a pure function of ``(corpus, sleep_s, unit)``:

* each worker rebuilds its pipelines from the pickled corpus, whose
  construction is fully deterministic given the corpus seed;
* per-app randomness derives from the study seed and the app id alone
  (harness run streams, install-time anchors, proxy forgeries), never
  from how many apps ran before on the same worker;
* unit results are merged back in submission order, so scheduling and
  completion order cannot leak into the output.

The serial path (``plan.workers == 1``) executes the very same unit
functions in the parent process, against lazily built (or caller
provided) local pipelines — one code path, two schedulers.

Fault tolerance
---------------

:meth:`ExecutionEngine.execute_resilient` extends the contract to failing
units: a failed unit is retried up to ``plan.max_retries`` times (with
bounded exponential backoff and an optional per-unit deadline), then
**quarantined** — its apps are re-run solo, each with its own retry
budget, so one poisoned app cannot take a whole chunk's results down.
Apps that still fail become :class:`~repro.core.exec.faults.UnitFailure`
records in the returned :class:`ExecutionOutcome` instead of exceptions.
Because unit purity makes retries and solo re-runs reproduce exactly what
an untroubled run would have computed, the surviving results remain
bit-for-bit identical to a fault-free run — the ledger is the only
difference.  An optional
:class:`~repro.core.exec.checkpoint.StudyCheckpoint` journals completed
units so a killed run can resume where it left off.

Incremental execution
---------------------

An optional :class:`~repro.core.exec.resultstore.ResultStore` makes
repeated runs incremental: before dispatching a unit the engine asks the
store for it (every app's entry must hit), and every completed unit is
published back, one content-addressed entry per app.  Because store keys
fingerprint exactly the inputs a result is a function of — corpus
configuration, capture window, stage, app id, per-app stage config, and
a code-version salt — a warm run recomputes only fingerprint misses and
still merges to bit-for-bit the same study as a cold run, at any worker
count.  The checkpoint journal remains the intra-run safety net (scoped
to one run configuration); the store is the cross-run memo.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core import obs
from repro.core.exec.checkpoint import StudyCheckpoint, split_unit
from repro.core.exec.faults import FaultPredicate, InjectedFault, UnitFailure
from repro.core.exec.plan import ExecutionPlan
from repro.core.exec.resultstore import ResultStore

#: A work unit: ``(kind, platform, dataset, indices, extra)``.  ``indices``
#: are positions inside ``corpus.dataset(platform, dataset)``.  ``extra``
#: is the pre-launch wait for dynamic units and the per-index pinned
#: destination tuples for circumvention units.
WorkUnit = Tuple[str, str, str, Tuple[int, ...], object]


@dataclass
class ExecutionOutcome:
    """What a fault-tolerant execution produced.

    Attributes:
        unit_results: per-unit result lists in submission order; apps that
            failed permanently are simply absent from their unit's list.
        failures: the error ledger — one record per abandoned app.
    """

    unit_results: List[list]
    failures: List[UnitFailure] = field(default_factory=list)

    @property
    def items(self) -> list:
        """All results flattened, preserving submission order."""
        return [item for unit in self.unit_results for item in unit]


def _build_state(
    corpus, sleep_s: float, fault_predicate: Optional[FaultPredicate] = None
) -> dict:
    """Process-local execution state; pipelines are built on first use."""
    return {
        "corpus": corpus,
        "sleep_s": sleep_s,
        "faults": fault_predicate,
        "static": None,
        "dynamic": None,
        "circumvent": None,
    }


def _static_pipeline(state: dict):
    if state["static"] is None:
        from repro.core.static.pipeline import StaticPipeline

        state["static"] = StaticPipeline(
            state["corpus"].registry.ctlog, fault_predicate=state["faults"]
        )
    return state["static"]


def _dynamic_pipeline(state: dict):
    if state["dynamic"] is None:
        from repro.core.dynamic.pipeline import DynamicPipeline

        state["dynamic"] = DynamicPipeline(
            state["corpus"],
            sleep_s=state["sleep_s"],
            fault_predicate=state["faults"],
        )
    return state["dynamic"]


def _circumvention_pipeline(state: dict):
    if state["circumvent"] is None:
        from repro.core.circumvent.pipeline import CircumventionPipeline

        state["circumvent"] = CircumventionPipeline(
            _dynamic_pipeline(state), fault_predicate=state["faults"]
        )
    return state["circumvent"]


def _run_unit(state: dict, unit: WorkUnit) -> list:
    """Execute one unit against process-local state."""
    kind, platform, dataset, indices, extra = unit
    apps = state["corpus"].dataset(platform, dataset)
    if kind == "static":
        pipeline = _static_pipeline(state)
        return [pipeline.analyze_app(apps[i]) for i in indices]
    if kind == "dynamic":
        pipeline = _dynamic_pipeline(state)
        return [
            pipeline.run_app(apps[i], pre_launch_wait_s=extra) for i in indices
        ]
    if kind == "circumvent":
        pipeline = _circumvention_pipeline(state)
        return [
            pipeline.circumvent_app_pins(apps[i], set(pins))
            for i, pins in zip(indices, extra)
        ]
    raise ValueError(f"unknown work-unit kind: {kind!r}")


def _run_unit_timed(state: dict, unit: WorkUnit) -> list:
    """Execute one unit inside a top-level telemetry span.

    The span is a no-op when no recorder is active in this process; with
    one, it becomes the unit's depth-0 region, under which the pipelines'
    per-app and per-phase spans nest.
    """
    kind, platform, dataset, indices, _ = unit
    with obs.span(
        f"unit.{kind}",
        cat="exec",
        platform=platform,
        dataset=dataset,
        apps=len(indices),
    ):
        return _run_unit(state, unit)


# -- worker-process entry points ---------------------------------------------

_WORKER_STATE: Optional[dict] = None
_WORKER_RECORDER: Optional[obs.Recorder] = None


def _init_worker(
    corpus,
    sleep_s: float,
    fault_predicate: Optional[FaultPredicate],
    telemetry: bool = False,
) -> None:
    """Pool initializer: receives the corpus once per worker process."""
    global _WORKER_STATE, _WORKER_RECORDER
    _WORKER_STATE = _build_state(corpus, sleep_s, fault_predicate)
    if telemetry:
        _WORKER_RECORDER = obs.Recorder().install()


def _run_unit_in_worker(unit: WorkUnit) -> list:
    assert _WORKER_STATE is not None, "worker used before initialization"
    return _run_unit(_WORKER_STATE, unit)


def _stamp_done(future) -> None:
    """Done-callback: record completion time on the telemetry clock.

    Runs in the executor's collection thread the moment the result lands,
    so queue-wait accounting is not skewed by how long the parent takes
    to get around to consuming earlier futures.
    """
    future.done_t = obs.now()


def _run_unit_in_worker_telemetry(unit: WorkUnit) -> tuple:
    """Telemetry variant: returns ``(result, TelemetrySnapshot)``.

    The snapshot is the worker recorder's delta since its last drain, so
    spans and cache counters of a failed earlier attempt ride along with
    the next successful unit on the same worker — nothing is lost, only
    attributed slightly late.
    """
    assert _WORKER_STATE is not None, "worker used before initialization"
    assert _WORKER_RECORDER is not None
    result = _run_unit_timed(_WORKER_STATE, unit)
    return result, _WORKER_RECORDER.drain()


class ExecutionEngine:
    """Schedules study work units under an :class:`ExecutionPlan`.

    Args:
        corpus: the app corpus (pickled to each worker once).
        plan: sharding + fault-tolerance configuration; defaults to serial.
        sleep_s: dynamic-run capture window, forwarded to worker pipelines.
        pipelines: optional ``(static, dynamic, circumvention)`` triple to
            reuse as the parent-process pipelines for serial execution
            (so a :class:`~repro.core.analysis.study.Study` and its engine
            share devices and identifiers).
        fault_predicate: injectable per-app failure predicate, shipped to
            worker pipelines (testing hook; see
            :mod:`repro.core.exec.faults`).  Caller-provided ``pipelines``
            are assumed to carry their own predicate already.
        recorder: optional telemetry recorder (see :mod:`repro.core.obs`).
            When set, every unit runs under a span, workers stream
            per-unit telemetry snapshots back with their results, and the
            engine counts retries, quarantines, failures and journal
            replays.  Must be set before the worker pool is first used
            (pool initialisation bakes the telemetry flag in).  Results
            are bit-for-bit identical with and without a recorder.
        store: optional :class:`~repro.core.exec.resultstore.ResultStore`.
            When set, resilient execution consults it before dispatching
            each unit (a full per-app hit skips the unit entirely) and
            publishes completed units back.  Results are bit-for-bit
            identical with and without a store, warm or cold.
    """

    def __init__(
        self,
        corpus,
        plan: Optional[ExecutionPlan] = None,
        sleep_s: float = 30.0,
        pipelines: Optional[tuple] = None,
        fault_predicate: Optional[FaultPredicate] = None,
        recorder: Optional[obs.Recorder] = None,
        store: Optional[ResultStore] = None,
    ):
        self.corpus = corpus
        self.plan = plan or ExecutionPlan()
        self.sleep_s = sleep_s
        self.fault_predicate = fault_predicate
        self.recorder = recorder
        self.store = store
        self._state = _build_state(corpus, sleep_s, fault_predicate)
        if pipelines is not None:
            static, dynamic, circumvent = pipelines
            self._state["static"] = static
            self._state["dynamic"] = dynamic
            self._state["circumvent"] = circumvent
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the worker pool (no-op for serial plans)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.plan.workers,
                initializer=_init_worker,
                initargs=(
                    self.corpus,
                    self.sleep_s,
                    self.fault_predicate,
                    self.recorder is not None,
                ),
            )
        return self._pool

    # -- telemetry plumbing ------------------------------------------------

    def _count(self, name: str, n: float = 1) -> None:
        if self.recorder is not None:
            self.recorder.count(name, n)

    def _publish(self, unit: WorkUnit, result: list) -> None:
        """Publish one completed unit to the result store, if attached."""
        if self.store is not None:
            self.store.publish_unit(unit, result)

    def _entry(self):
        """The worker entry point matching the telemetry mode."""
        if self.recorder is not None:
            return _run_unit_in_worker_telemetry
        return _run_unit_in_worker

    def _submit(self, pool: ProcessPoolExecutor, unit: WorkUnit):
        """Submit one unit; stamp submit/done times when instrumented."""
        future = pool.submit(self._entry(), unit)
        if self.recorder is not None:
            future.submit_t = obs.now()
            future.add_done_callback(_stamp_done)
        return future

    def _collect(self, future) -> list:
        """Resolve a future to its unit result, folding telemetry in.

        With a recorder, the worker payload is ``(result, snapshot)``:
        the snapshot's counters merge order-independently, its spans are
        rebased from the worker's ``perf_counter`` origin onto the parent
        timeline (anchored so the unit's compute region ends at its
        completion time), and queue-wait (submit-to-done wall time minus
        in-worker compute) is recorded per unit.
        """
        payload = future.result()
        if self.recorder is None:
            return payload
        result, snapshot = payload
        compute_s = snapshot.compute_seconds()
        done_t = getattr(future, "done_t", obs.now())
        wall_s = done_t - getattr(future, "submit_t", done_t)
        self.recorder.merge_snapshot(snapshot, rebase_to=done_t - compute_s)
        self.recorder.observe("exec.unit_wall_s", wall_s)
        self.recorder.observe("exec.unit_compute_s", compute_s)
        self.recorder.observe(
            "exec.unit_queue_wait_s", max(0.0, wall_s - compute_s)
        )
        return result

    def _run_local(self, unit: WorkUnit) -> list:
        """Run one unit in-process (the serial scheduler), instrumented."""
        if self.recorder is None:
            return _run_unit(self._state, unit)
        watch = obs.Stopwatch()
        result = _run_unit_timed(self._state, unit)
        self.recorder.observe("exec.unit_compute_s", watch.elapsed())
        return result

    # -- sharding ----------------------------------------------------------

    def units_for(
        self,
        kind: str,
        key: Tuple[str, str],
        indices: Sequence[int],
        extra: object = None,
    ) -> List[WorkUnit]:
        """Shard ``indices`` of one dataset into work units.

        For ``circumvent`` units ``extra`` must be a sequence aligned with
        ``indices`` (the pinned destinations of each app); it is sliced
        along with them.  For ``dynamic`` units it is the scalar
        pre-launch wait, replicated into every unit.
        """
        indices = list(indices)
        chunk = self.plan.chunk_for(len(indices))
        units: List[WorkUnit] = []
        for start in range(0, len(indices), chunk):
            block = tuple(indices[start : start + chunk])
            if kind == "circumvent":
                unit_extra: object = tuple(extra[start : start + chunk])
            elif kind == "dynamic":
                unit_extra = float(extra or 0.0)
            else:
                unit_extra = None
            units.append((kind, key[0], key[1], block, unit_extra))
        return units

    # -- strict execution --------------------------------------------------

    def execute(self, units: Sequence[WorkUnit]) -> List[list]:
        """Run units strictly: any worker exception propagates.

        Returns per-unit results in submission order.  The serial plan
        runs them in-process; otherwise units are submitted to the pool
        and collected by future, so the merge order is the submission
        order regardless of completion order.  On error the pool is shut
        down before the exception propagates — a failed strict run must
        not leak worker processes.
        """
        try:
            if self.plan.serial:
                results = []
                for unit in units:
                    results.append(self._run_local(unit))
                    self._count("exec.units.completed")
                return results
            pool = self._ensure_pool()
            futures = [self._submit(pool, unit) for unit in units]
            try:
                results = []
                for future in futures:
                    results.append(self._collect(future))
                    self._count("exec.units.completed")
                return results
            except BaseException:
                for future in futures:
                    future.cancel()
                raise
        except BaseException:
            self.close()
            raise

    def map_dataset(
        self,
        kind: str,
        key: Tuple[str, str],
        indices: Sequence[int],
        extra: object = None,
    ) -> list:
        """Shard, execute (strictly) and concatenate one dataset's units."""
        results = self.execute(self.units_for(kind, key, indices, extra))
        return [item for unit_result in results for item in unit_result]

    # -- fault-tolerant execution ------------------------------------------

    def execute_resilient(
        self,
        units: Sequence[WorkUnit],
        checkpoint: Optional[StudyCheckpoint] = None,
    ) -> ExecutionOutcome:
        """Run units with retry, quarantine, and an error ledger.

        Journaled units (when ``checkpoint`` is given) are replayed
        without executing; completed units are journaled as they finish.
        With a result store attached, units whose every app is already
        stored are composed from the store instead of dispatched, and
        completed units are published back for later runs.  Never raises
        for per-unit failures — they land in the outcome's ledger.
        Unexpected scheduler-level errors (and interrupts) still
        propagate, after the pool is shut down.
        """
        units = list(units)
        unit_results: List[Optional[list]] = [None] * len(units)
        failures: List[UnitFailure] = []
        pending: List[Tuple[int, WorkUnit]] = []
        for position, unit in enumerate(units):
            cached = checkpoint.lookup(unit) if checkpoint is not None else None
            if cached is not None:
                unit_results[position] = cached
                self._count("journal.units.skipped")
                continue
            stored = (
                self.store.lookup_unit(unit)
                if self.store is not None
                else None
            )
            if stored is not None:
                # A store hit also enters the journal so an interrupted
                # warm run resumes without re-consulting the store.
                if checkpoint is not None:
                    checkpoint.record(unit, stored)
                unit_results[position] = stored
                self._count("store.units.skipped")
            else:
                pending.append((position, unit))

        try:
            if self.plan.serial:
                for position, unit in pending:
                    unit_results[position] = self._run_with_recovery(
                        unit, failures, checkpoint
                    )
            else:
                pool = self._ensure_pool()
                futures = [
                    (position, unit, self._submit(pool, unit))
                    for position, unit in pending
                ]
                for position, unit, future in futures:
                    try:
                        result = self._collect(future)
                    except Exception as exc:
                        unit_results[position] = self._run_with_recovery(
                            unit, failures, checkpoint, first_error=exc
                        )
                    else:
                        if checkpoint is not None:
                            checkpoint.record(unit, result)
                        self._publish(unit, result)
                        unit_results[position] = result
                        self._count("exec.units.completed")
        except BaseException:
            self.close()
            raise

        return ExecutionOutcome(
            [result if result is not None else [] for result in unit_results],
            failures,
        )

    def map_dataset_resilient(
        self,
        kind: str,
        key: Tuple[str, str],
        indices: Sequence[int],
        extra: object = None,
        checkpoint: Optional[StudyCheckpoint] = None,
    ) -> ExecutionOutcome:
        """Shard and execute one dataset's units fault-tolerantly."""
        return self.execute_resilient(
            self.units_for(kind, key, indices, extra), checkpoint
        )

    # -- recovery internals ------------------------------------------------

    def _attempt(self, unit: WorkUnit) -> list:
        """One attempt at one unit, on whichever scheduler the plan uses."""
        if self.plan.serial:
            return self._run_local(unit)
        return self._collect(self._submit(self._ensure_pool(), unit))

    def _retry(
        self, unit: WorkUnit, first_error: Exception
    ) -> Tuple[Optional[list], int, Optional[Exception]]:
        """Retry a failed unit within the plan's budget.

        Returns ``(result, attempts, last_error)`` where ``attempts``
        counts the initial attempt; ``result`` is None when every retry
        failed or the deadline expired.
        """
        plan = self.plan
        attempts = 1
        error: Optional[Exception] = first_error
        deadline = (
            time.monotonic() + plan.retry_deadline_s
            if plan.retry_deadline_s > 0
            else None
        )
        while attempts - 1 < plan.max_retries:
            if deadline is not None and time.monotonic() >= deadline:
                break
            backoff = plan.backoff_for(attempts - 1)
            if backoff > 0:
                time.sleep(backoff)
            attempts += 1
            self._count("exec.retry.attempts")
            try:
                return self._attempt(unit), attempts, None
            except Exception as exc:
                error = exc
                self._count_error(exc)
        return None, attempts, error

    def _count_error(self, exc: Exception) -> None:
        """Ledger the error kind: injected faults vs genuine crashes."""
        if isinstance(exc, InjectedFault):
            self._count("exec.faults.injected")
        else:
            self._count("exec.faults.unexpected")

    def _run_with_recovery(
        self,
        unit: WorkUnit,
        failures: List[UnitFailure],
        checkpoint: Optional[StudyCheckpoint],
        first_error: Optional[Exception] = None,
        in_quarantine: bool = False,
    ) -> list:
        """Run one unit to a result or a ledger entry, never an exception.

        The escalation ladder: attempt, retry up to ``plan.max_retries``
        times, then (for multi-app units) quarantine — re-run each app as
        its own solo unit through this same ladder, so only the genuinely
        bad apps are lost.  Survivors are journaled; casualties become
        :class:`UnitFailure` records.
        """
        if first_error is None:
            try:
                result = self._attempt(unit)
            except Exception as exc:
                first_error = exc
                self._count_error(exc)
            else:
                if checkpoint is not None:
                    checkpoint.record(unit, result)
                self._publish(unit, result)
                self._count("exec.units.completed")
                return result
        else:
            self._count_error(first_error)

        result, attempts, error = self._retry(unit, first_error)
        if result is not None:
            if checkpoint is not None:
                checkpoint.record(unit, result)
            self._publish(unit, result)
            self._count("exec.units.completed")
            self._count("exec.units.recovered_by_retry")
            return result

        kind, platform, dataset, indices, _ = unit
        if len(indices) > 1 and self.plan.quarantine:
            self._count("exec.units.quarantined")
            merged: list = []
            for solo in split_unit(unit):
                merged.extend(
                    self._run_with_recovery(
                        solo, failures, checkpoint, in_quarantine=True
                    )
                )
            return merged

        apps = self.corpus.dataset(platform, dataset)
        for index in indices:
            self._count("exec.apps.abandoned")
            failures.append(
                UnitFailure(
                    app_id=apps[index].app.app_id,
                    phase=kind,
                    platform=platform,
                    dataset=dataset,
                    index=index,
                    attempts=attempts,
                    error=repr(error),
                    quarantined=in_quarantine,
                )
            )
        return []
