"""The parallel study execution engine.

Shards per-app work units — static scans, two-setting dynamic runs,
circumvention sweeps — across a :class:`~concurrent.futures.ProcessPoolExecutor`
while keeping study results bit-for-bit identical to a serial run.

Determinism contract
--------------------

Every work unit is a pure function of ``(corpus, sleep_s, unit)``:

* each worker obtains a corpus identical to the parent's through a
  :class:`WorkerBootstrap` — inherited copy-on-write under ``fork``,
  rebuilt locally from a :class:`~repro.corpus.spec.CorpusSpec`
  otherwise — and every non-inherited corpus is fingerprint-verified
  against the parent's before any unit runs;
* per-app randomness derives from the study seed and the app id alone
  (harness run streams, install-time anchors, proxy forgeries), never
  from how many apps ran before on the same worker;
* unit results are merged back in submission order, so scheduling and
  completion order cannot leak into the output.

The serial path (``plan.serial``) executes the very same unit functions
in the parent process, against lazily built (or caller provided) local
pipelines — one code path, two schedulers.

Pool-boundary economics
-----------------------

Three mechanisms keep the boundary cheaper than the work it distributes
(DESIGN.md §11):

* **Spec bootstrap** — pool ``initargs`` carry a few-dozen-byte corpus
  spec instead of the multi-megabyte corpus pickle; workers rebuild (or
  inherit) the world locally.
* **Compact payloads** — unit results travel as slim-tuple encodings
  (:mod:`repro.core.exec.payload`) and are rehydrated parent-side,
  memoized against the parent corpus.
* **Cost-aware scheduling** — units are sized per kind from
  :mod:`repro.core.exec.costmodel`, dispatched through a bounded
  in-flight window (fast units backfill stragglers without unbounded
  queueing), and an ``adaptive`` plan falls back to the serial path
  when the modeled dispatch overhead exceeds the modeled parallel win.

Fault tolerance
---------------

:meth:`ExecutionEngine.execute_resilient` extends the contract to failing
units: a failed unit is retried up to ``plan.max_retries`` times (with
bounded exponential backoff and an optional per-unit deadline), then
**quarantined** — its apps are re-run solo, each with its own retry
budget, so one poisoned app cannot take a whole chunk's results down.
Apps that still fail become :class:`~repro.core.exec.faults.UnitFailure`
records in the returned :class:`ExecutionOutcome` instead of exceptions.
The ladder is reserved for *retryable* faults: deterministic programming
errors (:data:`~repro.core.exec.faults.NON_RETRYABLE_ERRORS`, e.g. an
``AttributeError`` inside a detector) propagate immediately instead of
being retried or quarantined into the ledger.
Because unit purity makes retries and solo re-runs reproduce exactly what
an untroubled run would have computed, the surviving results remain
bit-for-bit identical to a fault-free run — the ledger is the only
difference.  An optional
:class:`~repro.core.exec.checkpoint.StudyCheckpoint` journals completed
units so a killed run can resume where it left off.

Incremental execution
---------------------

An optional :class:`~repro.core.exec.resultstore.ResultStore` makes
repeated runs incremental: before dispatching a unit the engine asks the
store for it (every app's entry must hit), and every completed unit is
published back, one content-addressed entry per app.  Because store keys
fingerprint exactly the inputs a result is a function of — corpus
configuration, capture window, stage, app id, per-app stage config, and
a code-version salt — a warm run recomputes only fingerprint misses and
still merges to bit-for-bit the same study as a cold run, at any worker
count.  The checkpoint journal remains the intra-run safety net (scoped
to one run configuration); the store is the cross-run memo.

Stage-granular recomputation (DESIGN.md §15): a unit that misses at the
app level may still have warm *stage* artifacts on disk (a config flip
invalidated only the downstream suffix of its stage graph).  The engine
probes for those and runs such units in the parent process with the
stage cache attached — pool workers have no store handle, so partial
recomputation is parent-side by construction — while fully cold units
still ship to the pool.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.core import obs
from repro.core.exec import costmodel
from repro.core.exec.checkpoint import StudyCheckpoint, split_unit
from repro.core.exec.faults import (
    FaultPredicate,
    InjectedFault,
    UnitFailure,
    is_retryable,
)
from repro.core.exec.plan import ExecutionPlan
from repro.core.exec.resultstore import ResultStore, corpus_fingerprint
from repro.corpus.spec import CorpusSpec

#: A work unit: ``(kind, platform, dataset, indices, extra)``.  ``indices``
#: are positions inside ``corpus.dataset(platform, dataset)``.  ``extra``
#: is the pre-launch wait for dynamic units and the per-index pinned
#: destination tuples for circumvention units.
WorkUnit = Tuple[str, str, str, Tuple[int, ...], object]


@dataclass
class ExecutionOutcome:
    """What a fault-tolerant execution produced.

    Attributes:
        unit_results: per-unit result lists in submission order; apps that
            failed permanently are simply absent from their unit's list.
        failures: the error ledger — one record per abandoned app.
    """

    unit_results: List[list]
    failures: List[UnitFailure] = field(default_factory=list)

    @property
    def items(self) -> list:
        """All results flattened, preserving submission order."""
        return [item for unit in self.unit_results for item in unit]


#: The pipeline constructor knobs worker processes rebuild with when the
#: parent ships no overrides — one entry per stage-graph config knob that
#: is not already threaded separately (``sleep_s``, fault predicate).
DEFAULT_PIPELINE_CONFIG = {
    "static": {"jailbroken_device_available": True, "include_native": True},
    "dynamic": {"transient_failure_prob": 0.015, "detector": "full"},
    "circumvent": {"hook_set": None},
}


def _pipeline_config(pipelines: Optional[tuple]) -> dict:
    """The per-kind constructor kwargs mirroring the parent pipelines.

    Shipped to pool workers so their rebuilt pipelines carry the same
    config knobs (detector variant, native-scan ablation, hook set) as
    the parent's — worker results must be a function of the *study's*
    configuration, not the constructor defaults.
    """
    if pipelines is None:
        return {}
    static, dynamic, circumvent = pipelines
    config: dict = {}
    if static is not None:
        config["static"] = {
            "jailbroken_device_available": static.jailbroken_device_available,
            "include_native": static.include_native,
        }
    if dynamic is not None:
        config["dynamic"] = {
            "transient_failure_prob": dynamic.transient_failure_prob,
            "detector": dynamic.detector,
        }
    if circumvent is not None:
        config["circumvent"] = {"hook_set": circumvent.hook_set}
    return config


def _config_is_default(config: dict) -> bool:
    """Whether a pipeline config matches the worker-rebuild defaults."""
    return all(
        config.get(kind, defaults) == defaults
        for kind, defaults in DEFAULT_PIPELINE_CONFIG.items()
    )


def _build_state(
    corpus,
    sleep_s: float,
    fault_predicate: Optional[FaultPredicate] = None,
    config: Optional[dict] = None,
) -> dict:
    """Process-local execution state; pipelines are built on first use."""
    return {
        "corpus": corpus,
        "sleep_s": sleep_s,
        "faults": fault_predicate,
        "config": config or {},
        "static": None,
        "dynamic": None,
        "circumvent": None,
    }


def _static_pipeline(state: dict):
    if state["static"] is None:
        from repro.core.static.pipeline import StaticPipeline

        state["static"] = StaticPipeline(
            state["corpus"].registry.ctlog,
            fault_predicate=state["faults"],
            **state["config"].get("static", {}),
        )
    return state["static"]


def _dynamic_pipeline(state: dict):
    if state["dynamic"] is None:
        from repro.core.dynamic.pipeline import DynamicPipeline

        state["dynamic"] = DynamicPipeline(
            state["corpus"],
            sleep_s=state["sleep_s"],
            fault_predicate=state["faults"],
            **state["config"].get("dynamic", {}),
        )
    return state["dynamic"]


def _circumvention_pipeline(state: dict):
    if state["circumvent"] is None:
        from repro.core.circumvent.pipeline import CircumventionPipeline

        state["circumvent"] = CircumventionPipeline(
            _dynamic_pipeline(state),
            fault_predicate=state["faults"],
            **state["config"].get("circumvent", {}),
        )
    return state["circumvent"]


def _run_unit(state: dict, unit: WorkUnit, cache=None) -> list:
    """Execute one unit against process-local state.

    ``cache`` is an optional stage-granular result store; with one, the
    pipelines' stage graphs serve warm stages from it and publish
    computed ones back (parent-process runs only — workers never hold a
    store handle).
    """
    kind, platform, dataset, indices, extra = unit
    apps = state["corpus"].dataset(platform, dataset)
    if kind == "static":
        pipeline = _static_pipeline(state)
        return [
            pipeline.analyze_app(apps[i], cache=cache, dataset=dataset)
            for i in indices
        ]
    if kind == "dynamic":
        pipeline = _dynamic_pipeline(state)
        return [
            pipeline.run_app(
                apps[i],
                pre_launch_wait_s=extra,
                cache=cache,
                dataset=dataset,
            )
            for i in indices
        ]
    if kind == "circumvent":
        pipeline = _circumvention_pipeline(state)
        return [
            pipeline.circumvent_app_pins(
                apps[i], set(pins), cache=cache, dataset=dataset
            )
            for i, pins in zip(indices, extra)
        ]
    raise ValueError(f"unknown work-unit kind: {kind!r}")


def _run_unit_timed(state: dict, unit: WorkUnit, cache=None) -> list:
    """Execute one unit inside a top-level telemetry span.

    The span is a no-op when no recorder is active in this process; with
    one, it becomes the unit's depth-0 region, under which the pipelines'
    per-app and per-phase spans nest.
    """
    kind, platform, dataset, indices, _ = unit
    with obs.span(
        f"unit.{kind}",
        cat="exec",
        platform=platform,
        dataset=dataset,
        apps=len(indices),
    ):
        return _run_unit(state, unit, cache=cache)


# -- worker bootstrap --------------------------------------------------------

#: The corpus of the engine that most recently opened a pool, published
#: for copy-on-write inheritance: under the ``fork`` start method a
#: worker process sees this module global already set and (after a
#: fingerprint check) adopts it without any serialization or rebuild.
_PARENT_CORPUS = None


@dataclass
class WorkerBootstrap:
    """Everything a worker needs to obtain its corpus.

    Three sources, in order of preference at :meth:`resolve` time:

    * ``inherited`` — the forked copy of :data:`_PARENT_CORPUS`, when its
      fingerprint matches (zero-copy; Linux/macOS-fork pools);
    * ``unpickled`` — the corpus shipped by value, when present (the
      ``bootstrap="pickle"`` escape hatch for hand-mutated corpora);
    * ``rebuilt`` — regenerated from the spec and verified against the
      parent's fingerprint (spawn platforms; the production parity gate:
      a divergent rebuild raises instead of computing wrong results).
    """

    fingerprint: str
    spec: Optional[CorpusSpec] = None
    corpus: Optional[object] = None

    @classmethod
    def for_corpus(cls, corpus, mode: str = "auto") -> "WorkerBootstrap":
        """The bootstrap an engine ships for ``corpus`` under ``mode``."""
        fingerprint = corpus_fingerprint(corpus)
        if mode != "pickle":
            spec = CorpusSpec.from_corpus(corpus)
            if spec is not None and spec.fingerprint() == fingerprint:
                return cls(fingerprint=fingerprint, spec=spec)
            if mode == "spec":
                raise ValueError(
                    "corpus is not spec-representable (mutated datasets "
                    "or non-generator shape); use bootstrap='pickle'"
                )
        return cls(fingerprint=fingerprint, corpus=corpus)

    def payload_bytes(self) -> int:
        """Bytes this bootstrap pickles to — what one worker's initargs
        cost on start methods that serialize them (``spawn``)."""
        return len(pickle.dumps(self))

    def resolve(self) -> Tuple[object, str]:
        """The worker-local corpus and how it was obtained."""
        parent = _PARENT_CORPUS
        if parent is not None and corpus_fingerprint(parent) == self.fingerprint:
            return parent, "inherited"
        if self.corpus is not None:
            return self.corpus, "unpickled"
        assert self.spec is not None
        rebuilt = self.spec.build()
        if corpus_fingerprint(rebuilt) != self.fingerprint:
            raise RuntimeError(
                "worker corpus rebuild diverged from the parent corpus "
                f"(spec {self.spec!r}); the generator is not deterministic "
                "on this platform"
            )
        return rebuilt, "rebuilt"


# -- worker-process entry points ---------------------------------------------

_WORKER_STATE: Optional[dict] = None
_WORKER_RECORDER: Optional[obs.Recorder] = None


def _payload():
    """The payload codec, imported lazily: it pulls in the pipelines'
    result models, which transitively import this package."""
    from repro.core.exec import payload

    return payload


def _init_worker(
    bootstrap: WorkerBootstrap,
    sleep_s: float,
    fault_predicate: Optional[FaultPredicate],
    telemetry: bool = False,
    config: Optional[dict] = None,
) -> None:
    """Pool initializer: resolve the corpus once per worker process.

    With telemetry on, the init cost and bootstrap mode are recorded in
    the worker recorder and ride back with the first unit's snapshot
    (``exec.worker.init_s`` / ``exec.bootstrap.*``).
    """
    global _WORKER_STATE, _WORKER_RECORDER
    if telemetry:
        _WORKER_RECORDER = obs.Recorder().install()
    watch = obs.Stopwatch()
    corpus, how = bootstrap.resolve()
    _WORKER_STATE = _build_state(corpus, sleep_s, fault_predicate, config)
    obs.observe("exec.worker.init_s", watch.elapsed())
    obs.count(f"exec.bootstrap.{how}")


def _run_unit_in_worker(unit: WorkUnit) -> tuple:
    assert _WORKER_STATE is not None, "worker used before initialization"
    return _payload().encode_unit(unit[0], _run_unit(_WORKER_STATE, unit))


def _stamp_done(future) -> None:
    """Done-callback: record completion time on the telemetry clock.

    Runs in the executor's collection thread the moment the result lands,
    so queue-wait accounting is not skewed by how long the parent takes
    to get around to consuming earlier futures.
    """
    future.done_t = obs.now()


def _run_unit_in_worker_telemetry(unit: WorkUnit) -> tuple:
    """Telemetry variant: returns ``(encoded_result, TelemetrySnapshot)``.

    The snapshot is the worker recorder's delta since its last drain, so
    spans and cache counters of a failed earlier attempt ride along with
    the next successful unit on the same worker — nothing is lost, only
    attributed slightly late.
    """
    assert _WORKER_STATE is not None, "worker used before initialization"
    assert _WORKER_RECORDER is not None
    result = _run_unit_timed(_WORKER_STATE, unit)
    return _payload().encode_unit(unit[0], result), _WORKER_RECORDER.drain()


class WarmPool:
    """A worker pool whose lifetime outlives any single engine or run.

    One-shot invocations pay the pool tax — process spawn, corpus
    bootstrap, pipeline construction in every worker — once per run and
    then throw the warm state away.  A :class:`WarmPool` inverts that
    ownership: the pool (and the bootstrap it was initialized with) is
    created once, handed to any number of consecutive
    :class:`ExecutionEngine` instances via their ``pool=`` argument, and
    shut down by whoever created it.  ``ExecutionEngine.close`` never
    shuts a shared pool down.

    Reuse is gated by :meth:`compatible_with`: worker state is baked in
    at pool initialization (corpus, capture window, fault predicate,
    telemetry mode), so an engine whose configuration differs gets its
    own transient pool instead — correctness never depends on a
    compatibility hit.  Because unit results are pure functions of
    ``(corpus, sleep_s, unit)``, results computed on a reused pool are
    bit-for-bit identical to a fresh pool's (the engine's determinism
    contract; warm worker pipelines are the same reuse the engine
    already performs *within* one run, stretched across runs).

    Only fault-free configurations are shareable: a fault predicate is
    baked into worker pipelines at init, so pools for fault-injected
    runs stay private to their engine.
    """

    def __init__(
        self,
        corpus,
        workers: int,
        sleep_s: float = 30.0,
        telemetry: bool = False,
        bootstrap: str = "auto",
    ):
        global _PARENT_CORPUS
        self.corpus = corpus
        self.fingerprint = corpus_fingerprint(corpus)
        self.workers = int(workers)
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        self.sleep_s = float(sleep_s)
        self.telemetry = bool(telemetry)
        self.bootstrap = WorkerBootstrap.for_corpus(corpus, bootstrap)
        # Publish for copy-on-write inheritance exactly like an
        # engine-owned pool would; workers fork lazily on first submit.
        # An engine-owned pool for a different corpus may republish this
        # global later — workers forked after that fall back to the
        # fingerprint-verified spec rebuild, so reuse degrades to a
        # rebuild, never to wrong results.
        _PARENT_CORPUS = corpus
        self._executor: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker,
            initargs=(self.bootstrap, self.sleep_s, None, self.telemetry),
        )

    @property
    def executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            raise RuntimeError("warm pool has been shut down")
        return self._executor

    @property
    def closed(self) -> bool:
        return self._executor is None

    def compatible_with(
        self,
        corpus,
        sleep_s: float,
        fault_predicate: Optional[FaultPredicate],
        telemetry: bool,
        config: Optional[dict] = None,
    ) -> bool:
        """Whether an engine with this configuration may run on the pool.

        Everything baked into worker state at init must match: the
        corpus (by fingerprint — same fingerprint, same object graph),
        the capture window, telemetry mode (it selects the worker entry
        point and result envelope), the absence of a fault predicate,
        and default pipeline config knobs (warm-pool workers are built
        with :data:`DEFAULT_PIPELINE_CONFIG`; an engine carrying a
        non-default detector, hook set or scan ablation gets its own
        pool).
        """
        if self._executor is None:
            return False
        return (
            fault_predicate is None
            and float(sleep_s) == self.sleep_s
            and bool(telemetry) == self.telemetry
            and _config_is_default(config or {})
            and (
                corpus is self.corpus
                or corpus_fingerprint(corpus) == self.fingerprint
            )
        )

    def shutdown(self, cancel_futures: bool = False) -> None:
        """Shut the pool down (idempotent); owner-only."""
        global _PARENT_CORPUS
        if self._executor is not None:
            self._executor.shutdown(cancel_futures=cancel_futures)
            self._executor = None
        if _PARENT_CORPUS is self.corpus:
            _PARENT_CORPUS = None

    def __enter__(self) -> "WarmPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class ExecutionEngine:
    """Schedules study work units under an :class:`ExecutionPlan`.

    Args:
        corpus: the app corpus.  Workers receive its
            :class:`WorkerBootstrap` (spec or pickle, per
            ``plan.bootstrap``), never the corpus itself unless the
            pickle escape hatch is in force.
        plan: sharding + scheduling + fault-tolerance configuration;
            defaults to serial.
        sleep_s: dynamic-run capture window, forwarded to worker pipelines.
        pipelines: optional ``(static, dynamic, circumvention)`` triple to
            reuse as the parent-process pipelines for serial execution
            (so a :class:`~repro.core.analysis.study.Study` and its engine
            share devices and identifiers).
        fault_predicate: injectable per-app failure predicate, shipped to
            worker pipelines (testing hook; see
            :mod:`repro.core.exec.faults`).  Caller-provided ``pipelines``
            are assumed to carry their own predicate already.
        recorder: optional telemetry recorder (see :mod:`repro.core.obs`).
            When set, every unit runs under a span, workers stream
            per-unit telemetry snapshots back with their results, and the
            engine counts retries, quarantines, failures, journal replays
            and pool-boundary traffic (``exec.ipc.*``).  Must be set
            before the worker pool is first used (pool initialisation
            bakes the telemetry flag in).  Results are bit-for-bit
            identical with and without a recorder.
        store: optional :class:`~repro.core.exec.resultstore.ResultStore`.
            When set, resilient execution consults it before dispatching
            each unit (a full per-app hit skips the unit entirely) and
            publishes completed units back.  Results are bit-for-bit
            identical with and without a store, warm or cold.
        pool: optional externally owned :class:`WarmPool`.  When
            compatible (same corpus fingerprint, capture window,
            telemetry mode, no fault predicate) the engine runs its
            units on it instead of spinning up its own pool, and
            :meth:`close` leaves it running for the next consumer.  An
            incompatible pool is simply ignored (counted as
            ``exec.pool.incompatible``); results are identical either
            way.
    """

    def __init__(
        self,
        corpus,
        plan: Optional[ExecutionPlan] = None,
        sleep_s: float = 30.0,
        pipelines: Optional[tuple] = None,
        fault_predicate: Optional[FaultPredicate] = None,
        recorder: Optional[obs.Recorder] = None,
        store: Optional[ResultStore] = None,
        pool: Optional[WarmPool] = None,
    ):
        self.corpus = corpus
        self.plan = plan or ExecutionPlan()
        self.sleep_s = sleep_s
        self.fault_predicate = fault_predicate
        self.recorder = recorder
        self.store = store
        self._config = _pipeline_config(pipelines)
        self._state = _build_state(
            corpus, sleep_s, fault_predicate, self._config
        )
        if pipelines is not None:
            static, dynamic, circumvent = pipelines
            self._state["static"] = static
            self._state["dynamic"] = dynamic
            self._state["circumvent"] = circumvent
        self._pool: Optional[ProcessPoolExecutor] = None
        self._shared_pool = pool
        self._pool_is_shared = False
        self._rehydrator = None

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self, cancel_futures: bool = False) -> None:
        """Release the worker pool (no-op for serial plans).

        An engine-owned pool is shut down; ``cancel_futures`` drops
        queued-but-unpicked work instead of draining it — the error-path
        contract: a failed strict run must neither leak worker processes
        nor burn time finishing work whose results will never be
        consumed.  A *shared* :class:`WarmPool` is merely detached: its
        owner decides when the warm state dies.
        """
        global _PARENT_CORPUS
        if self._pool is not None:
            if not self._pool_is_shared:
                self._pool.shutdown(cancel_futures=cancel_futures)
            self._pool = None
            self._pool_is_shared = False
        # Keep the corpus published while a live shared pool still wants
        # it: its not-yet-forked workers inherit through this global.
        keep_published = (
            self._shared_pool is not None
            and not self._shared_pool.closed
            and self._shared_pool.corpus is self.corpus
        )
        if not keep_published and _PARENT_CORPUS is self.corpus:
            _PARENT_CORPUS = None

    def _shared_pool_usable(self) -> bool:
        """Whether the attached shared pool can serve this engine."""
        return self._shared_pool is not None and (
            self._shared_pool.compatible_with(
                self.corpus,
                self.sleep_s,
                self.fault_predicate,
                self.recorder is not None,
                config=self._config,
            )
        )

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            if self._shared_pool_usable():
                self._pool = self._shared_pool.executor
                self._pool_is_shared = True
                self._count("exec.pool.reused")
                return self._pool
            if self._shared_pool is not None:
                self._count("exec.pool.incompatible")
            global _PARENT_CORPUS
            bootstrap = WorkerBootstrap.for_corpus(
                self.corpus, self.plan.bootstrap
            )
            # Publish the corpus for copy-on-write inheritance before the
            # executor exists: workers are forked lazily on first submit,
            # always after this point.
            _PARENT_CORPUS = self.corpus
            workers = self.plan.worker_count
            if self.recorder is not None:
                self.recorder.count(
                    "exec.ipc.corpus_bytes",
                    bootstrap.payload_bytes() * workers,
                )
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(
                    bootstrap,
                    self.sleep_s,
                    self.fault_predicate,
                    self.recorder is not None,
                    self._config,
                ),
            )
            self._pool_is_shared = False
        return self._pool

    # -- telemetry plumbing ------------------------------------------------

    def _count(self, name: str, n: float = 1) -> None:
        if self.recorder is not None:
            self.recorder.count(name, n)

    def _publish(self, unit: WorkUnit, result: list) -> None:
        """Publish one completed unit to the result store, if attached."""
        if self.store is not None:
            self.store.publish_unit(unit, result)

    def _entry(self):
        """The worker entry point matching the telemetry mode."""
        if self.recorder is not None:
            return _run_unit_in_worker_telemetry
        return _run_unit_in_worker

    def _submit(self, pool: ProcessPoolExecutor, unit: WorkUnit):
        """Submit one unit; stamp submit/done times when instrumented."""
        future = pool.submit(self._entry(), unit)
        if self.recorder is not None:
            future.submit_t = obs.now()
            future.add_done_callback(_stamp_done)
            self.recorder.count("exec.ipc.bytes_out", len(pickle.dumps(unit)))
        return future

    def _rehydrate(self, encoded: tuple) -> list:
        if self._rehydrator is None:
            self._rehydrator = _payload().Rehydrator(self.corpus)
        return self._rehydrator.decode_unit(encoded)

    def _collect(self, future) -> list:
        """Resolve a future to its unit result, folding telemetry in.

        The worker returns the unit's compact payload encoding; it is
        rehydrated here against the parent corpus.  With a recorder, the
        worker payload is ``(encoded, snapshot)``: the snapshot's
        counters merge order-independently, its spans are rebased from
        the worker's ``perf_counter`` origin onto the parent timeline
        (anchored so the unit's compute region ends at its completion
        time), and queue-wait (submit-to-done wall time minus in-worker
        compute) plus boundary bytes are recorded per unit.
        """
        payload = future.result()
        if self.recorder is None:
            return self._rehydrate(payload)
        encoded, snapshot = payload
        compute_s = snapshot.compute_seconds()
        done_t = getattr(future, "done_t", obs.now())
        wall_s = done_t - getattr(future, "submit_t", done_t)
        self.recorder.merge_snapshot(snapshot, rebase_to=done_t - compute_s)
        self.recorder.observe("exec.unit_wall_s", wall_s)
        self.recorder.observe("exec.unit_compute_s", compute_s)
        self.recorder.observe(
            "exec.unit_queue_wait_s", max(0.0, wall_s - compute_s)
        )
        self.recorder.count("exec.ipc.bytes_in", len(pickle.dumps(encoded)))
        return self._rehydrate(encoded)

    def _run_local(self, unit: WorkUnit, cache=None) -> list:
        """Run one unit in-process (the serial scheduler), instrumented."""
        if self.recorder is None:
            return _run_unit(self._state, unit, cache=cache)
        watch = obs.Stopwatch()
        result = _run_unit_timed(self._state, unit, cache=cache)
        self.recorder.observe("exec.unit_compute_s", watch.elapsed())
        return result

    # -- scheduling --------------------------------------------------------

    def _use_pool(self, units: Sequence[WorkUnit]) -> bool:
        """Pool or serial path for one batch of units.

        Non-adaptive plans follow their worker count verbatim.  Adaptive
        plans consult the cost model per batch: a batch whose modeled
        dispatch overhead exceeds its modeled parallel win runs in the
        parent process instead (counted as a serial fallback).
        """
        if self.plan.serial:
            return False
        if not self.plan.adaptive:
            return True
        if costmodel.should_parallelize(
            units,
            self.plan.worker_count,
            pool_started=self._pool is not None or self._shared_pool_usable(),
        ):
            self._count("exec.sched.parallel_batches")
            return True
        self._count("exec.sched.serial_fallbacks")
        return False

    def _dispatch_windowed(
        self,
        pool: ProcessPoolExecutor,
        pending: Iterable[Tuple[int, WorkUnit]],
        collect: Callable[[int, WorkUnit, object], None],
    ) -> None:
        """Run ``(position, unit)`` pairs through a bounded in-flight window.

        At most :func:`costmodel.inflight_window` futures are outstanding:
        enough to keep every worker fed and let fast units backfill behind
        stragglers, without queueing the whole batch into the pool (where
        an interrupt could only cancel, not unsubmit, it).  ``collect`` is
        called in *completion* order; callers index results by submission
        position, so merge order remains submission order regardless.
        """
        window = costmodel.inflight_window(self.plan.worker_count)
        outstanding: dict = {}
        queue = iter(pending)
        exhausted = False
        try:
            while True:
                while not exhausted and len(outstanding) < window:
                    try:
                        position, unit = next(queue)
                    except StopIteration:
                        exhausted = True
                        break
                    outstanding[self._submit(pool, unit)] = (position, unit)
                if not outstanding:
                    break
                done, _ = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in done:
                    position, unit = outstanding.pop(future)
                    collect(position, unit, future)
        except BaseException:
            # Cancel what has not been picked up yet.  Matters most on a
            # shared pool, which the error path must not shut down: the
            # queued remainder would otherwise burn warm workers on
            # results nobody will consume.
            for future in outstanding:
                future.cancel()
            raise

    # -- sharding ----------------------------------------------------------

    def units_for(
        self,
        kind: str,
        key: Tuple[str, str],
        indices: Sequence[int],
        extra: object = None,
    ) -> List[WorkUnit]:
        """Shard ``indices`` of one dataset into work units.

        For ``circumvent`` units ``extra`` must be a sequence aligned with
        ``indices`` (the pinned destinations of each app); it is sliced
        along with them.  For ``dynamic`` units it is the scalar
        pre-launch wait, replicated into every unit.
        """
        indices = list(indices)
        chunk = self.plan.chunk_for(len(indices), kind)
        units: List[WorkUnit] = []
        for start in range(0, len(indices), chunk):
            block = tuple(indices[start : start + chunk])
            if kind == "circumvent":
                unit_extra: object = tuple(extra[start : start + chunk])
            elif kind == "dynamic":
                unit_extra = float(extra or 0.0)
            else:
                unit_extra = None
            units.append((kind, key[0], key[1], block, unit_extra))
        return units

    # -- strict execution --------------------------------------------------

    def execute(self, units: Sequence[WorkUnit]) -> List[list]:
        """Run units strictly: any worker exception propagates.

        Returns per-unit results in submission order.  The serial path
        (by plan, or by adaptive fallback) runs them in-process;
        otherwise units flow through the bounded dispatch window and are
        merged by submission position, so completion order cannot leak
        into the output.  On error the pool is shut down with
        ``cancel_futures=True`` before the exception propagates — a
        failed strict run must neither leak worker processes nor drain
        the queued remainder of the batch first.
        """
        units = list(units)
        try:
            if not self._use_pool(units):
                results = []
                for unit in units:
                    results.append(self._run_local(unit))
                    self._count("exec.units.completed")
                return results
            pool = self._ensure_pool()
            results: List[Optional[list]] = [None] * len(units)

            def on_done(position: int, unit: WorkUnit, future) -> None:
                results[position] = self._collect(future)
                self._count("exec.units.completed")

            self._dispatch_windowed(pool, enumerate(units), on_done)
            return list(results)
        except BaseException:
            self.close(cancel_futures=True)
            raise

    def map_dataset(
        self,
        kind: str,
        key: Tuple[str, str],
        indices: Sequence[int],
        extra: object = None,
    ) -> list:
        """Shard, execute (strictly) and concatenate one dataset's units."""
        results = self.execute(self.units_for(kind, key, indices, extra))
        return [item for unit_result in results for item in unit_result]

    # -- fault-tolerant execution ------------------------------------------

    def execute_resilient(
        self,
        units: Sequence[WorkUnit],
        checkpoint: Optional[StudyCheckpoint] = None,
    ) -> ExecutionOutcome:
        """Run units with retry, quarantine, and an error ledger.

        Journaled units (when ``checkpoint`` is given) are replayed
        without executing; completed units are journaled as they finish.
        With a result store attached, units whose every app is already
        stored are composed from the store instead of dispatched, and
        completed units are published back for later runs.  Never raises
        for *retryable* per-unit failures — they land in the outcome's
        ledger.  Non-retryable failures
        (:data:`~repro.core.exec.faults.NON_RETRYABLE_ERRORS` —
        programming errors a retry cannot cure) propagate immediately,
        as do unexpected scheduler-level errors and interrupts, after
        the pool is released.
        """
        units = list(units)
        if self.store is not None:
            # Stage keys must resolve config knobs from the live pipeline
            # configuration, not the graph defaults — bind before any
            # lookup computes a fingerprint.
            self.store.bind_pipelines(
                static=_static_pipeline(self._state),
                dynamic=_dynamic_pipeline(self._state),
                circumvent=_circumvention_pipeline(self._state),
            )
        unit_results: List[Optional[list]] = [None] * len(units)
        failures: List[UnitFailure] = []
        pending: List[Tuple[int, WorkUnit]] = []
        for position, unit in enumerate(units):
            cached = checkpoint.lookup(unit) if checkpoint is not None else None
            if cached is not None:
                unit_results[position] = cached
                self._count("journal.units.skipped")
                continue
            stored = (
                self.store.lookup_unit(unit)
                if self.store is not None
                else None
            )
            if stored is not None:
                # A store hit also enters the journal so an interrupted
                # warm run resumes without re-consulting the store.
                if checkpoint is not None:
                    checkpoint.record(unit, stored)
                unit_results[position] = stored
                self._count("store.units.skipped")
            else:
                pending.append((position, unit))

        use_pool = self._use_pool([unit for _, unit in pending])
        partial: List[Tuple[int, WorkUnit]] = []
        if use_pool and self.store is not None:
            # Units with warm stage artifacts recompute partially in the
            # parent (workers have no store handle); fully cold units
            # still ship to the pool.
            partial = [
                (position, unit)
                for position, unit in pending
                if self.store.probe_unit_stages(unit)
            ]
            if partial:
                warm = {position for position, _ in partial}
                pending = [
                    (position, unit)
                    for position, unit in pending
                    if position not in warm
                ]
                self._count("store.units.partial", len(partial))
                if not pending:
                    use_pool = False
        try:
            for position, unit in partial:
                unit_results[position] = self._run_with_recovery(
                    unit, failures, checkpoint, use_pool=False
                )
            if not use_pool:
                for position, unit in pending:
                    unit_results[position] = self._run_with_recovery(
                        unit, failures, checkpoint, use_pool=False
                    )
            else:
                pool = self._ensure_pool()

                def on_done(position: int, unit: WorkUnit, future) -> None:
                    try:
                        result = self._collect(future)
                    except Exception as exc:
                        if not is_retryable(exc):
                            # A programming error is deterministic: the
                            # recovery ladder would replay it per retry
                            # and per quarantined app, then launder it
                            # into the ledger.  Fail the run instead.
                            self._count("exec.faults.nonretryable")
                            raise
                        unit_results[position] = self._run_with_recovery(
                            unit,
                            failures,
                            checkpoint,
                            first_error=exc,
                            use_pool=True,
                        )
                    else:
                        if checkpoint is not None:
                            checkpoint.record(unit, result)
                        self._publish(unit, result)
                        unit_results[position] = result
                        self._count("exec.units.completed")

                self._dispatch_windowed(pool, pending, on_done)
        except BaseException:
            self.close()
            raise

        return ExecutionOutcome(
            [result if result is not None else [] for result in unit_results],
            failures,
        )

    def map_dataset_resilient(
        self,
        kind: str,
        key: Tuple[str, str],
        indices: Sequence[int],
        extra: object = None,
        checkpoint: Optional[StudyCheckpoint] = None,
    ) -> ExecutionOutcome:
        """Shard and execute one dataset's units fault-tolerantly."""
        return self.execute_resilient(
            self.units_for(kind, key, indices, extra), checkpoint
        )

    # -- recovery internals ------------------------------------------------

    def _attempt(self, unit: WorkUnit, use_pool: bool) -> list:
        """One attempt at one unit, on the scheduler the batch chose.

        An adaptive serial fallback sticks for the whole recovery ladder:
        a batch the cost model kept in-process must not spin up a pool
        just to retry one unit.
        """
        if not use_pool:
            return self._run_local(unit, cache=self.store)
        return self._collect(self._submit(self._ensure_pool(), unit))

    def _retry(
        self, unit: WorkUnit, first_error: Exception, use_pool: bool
    ) -> Tuple[Optional[list], int, Optional[Exception]]:
        """Retry a failed unit within the plan's budget.

        Returns ``(result, attempts, last_error)`` where ``attempts``
        counts the initial attempt; ``result`` is None when every retry
        failed or the deadline expired.
        """
        plan = self.plan
        attempts = 1
        error: Optional[Exception] = first_error
        deadline = (
            time.monotonic() + plan.retry_deadline_s
            if plan.retry_deadline_s > 0
            else None
        )
        while attempts - 1 < plan.max_retries:
            if deadline is not None and time.monotonic() >= deadline:
                break
            backoff = plan.backoff_for(attempts - 1)
            if backoff > 0:
                time.sleep(backoff)
            attempts += 1
            self._count("exec.retry.attempts")
            try:
                return self._attempt(unit, use_pool), attempts, None
            except Exception as exc:
                if not is_retryable(exc):
                    # A retry "cured" by nondeterminism upstream of a
                    # programming error would mask the bug; propagate.
                    self._count("exec.faults.nonretryable")
                    raise
                error = exc
                self._count_error(exc)
        return None, attempts, error

    def _count_error(self, exc: Exception) -> None:
        """Ledger the error kind: injected faults vs genuine crashes."""
        if isinstance(exc, InjectedFault):
            self._count("exec.faults.injected")
        else:
            self._count("exec.faults.unexpected")

    def _run_with_recovery(
        self,
        unit: WorkUnit,
        failures: List[UnitFailure],
        checkpoint: Optional[StudyCheckpoint],
        first_error: Optional[Exception] = None,
        in_quarantine: bool = False,
        use_pool: bool = False,
    ) -> list:
        """Run one unit to a result or a ledger entry.

        The escalation ladder: attempt, retry up to ``plan.max_retries``
        times, then (for multi-app units) quarantine — re-run each app as
        its own solo unit through this same ladder, so only the genuinely
        bad apps are lost.  Survivors are journaled; casualties become
        :class:`UnitFailure` records.  Only *retryable* errors ride the
        ladder: a non-retryable (programming) error raises out of here
        immediately.
        """
        if first_error is None:
            try:
                result = self._attempt(unit, use_pool)
            except Exception as exc:
                if not is_retryable(exc):
                    # Never enters the retry/quarantine ladder: a
                    # detector's AttributeError is a failed run (under
                    # the service, a failed job), not app flakiness.
                    self._count("exec.faults.nonretryable")
                    raise
                first_error = exc
                self._count_error(exc)
            else:
                if checkpoint is not None:
                    checkpoint.record(unit, result)
                self._publish(unit, result)
                self._count("exec.units.completed")
                return result
        else:
            self._count_error(first_error)

        result, attempts, error = self._retry(unit, first_error, use_pool)
        if result is not None:
            if checkpoint is not None:
                checkpoint.record(unit, result)
            self._publish(unit, result)
            self._count("exec.units.completed")
            self._count("exec.units.recovered_by_retry")
            return result

        kind, platform, dataset, indices, _ = unit
        if len(indices) > 1 and self.plan.quarantine:
            self._count("exec.units.quarantined")
            merged: list = []
            for solo in split_unit(unit):
                merged.extend(
                    self._run_with_recovery(
                        solo,
                        failures,
                        checkpoint,
                        in_quarantine=True,
                        use_pool=use_pool,
                    )
                )
            return merged

        apps = self.corpus.dataset(platform, dataset)
        for index in indices:
            self._count("exec.apps.abandoned")
            failures.append(
                UnitFailure(
                    app_id=apps[index].app.app_id,
                    phase=kind,
                    platform=platform,
                    dataset=dataset,
                    index=index,
                    attempts=attempts,
                    error=repr(error),
                    quarantined=in_quarantine,
                )
            )
        return []
