"""The parallel study execution engine.

Shards per-app work units — static scans, two-setting dynamic runs,
circumvention sweeps — across a :class:`~concurrent.futures.ProcessPoolExecutor`
while keeping study results bit-for-bit identical to a serial run.

Determinism contract
--------------------

Every work unit is a pure function of ``(corpus, sleep_s, unit)``:

* each worker rebuilds its pipelines from the pickled corpus, whose
  construction is fully deterministic given the corpus seed;
* per-app randomness derives from the study seed and the app id alone
  (harness run streams, install-time anchors, proxy forgeries), never
  from how many apps ran before on the same worker;
* unit results are merged back in submission order, so scheduling and
  completion order cannot leak into the output.

The serial path (``plan.workers == 1``) executes the very same unit
functions in the parent process, against lazily built (or caller
provided) local pipelines — one code path, two schedulers.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.exec.plan import ExecutionPlan

#: A work unit: ``(kind, platform, dataset, indices, extra)``.  ``indices``
#: are positions inside ``corpus.dataset(platform, dataset)``.  ``extra``
#: is the pre-launch wait for dynamic units and the per-index pinned
#: destination tuples for circumvention units.
WorkUnit = Tuple[str, str, str, Tuple[int, ...], object]


def _build_state(corpus, sleep_s: float) -> dict:
    """Process-local execution state; pipelines are built on first use."""
    return {
        "corpus": corpus,
        "sleep_s": sleep_s,
        "static": None,
        "dynamic": None,
        "circumvent": None,
    }


def _static_pipeline(state: dict):
    if state["static"] is None:
        from repro.core.static.pipeline import StaticPipeline

        state["static"] = StaticPipeline(state["corpus"].registry.ctlog)
    return state["static"]


def _dynamic_pipeline(state: dict):
    if state["dynamic"] is None:
        from repro.core.dynamic.pipeline import DynamicPipeline

        state["dynamic"] = DynamicPipeline(
            state["corpus"], sleep_s=state["sleep_s"]
        )
    return state["dynamic"]


def _circumvention_pipeline(state: dict):
    if state["circumvent"] is None:
        from repro.core.circumvent.pipeline import CircumventionPipeline

        state["circumvent"] = CircumventionPipeline(_dynamic_pipeline(state))
    return state["circumvent"]


def _run_unit(state: dict, unit: WorkUnit) -> list:
    """Execute one unit against process-local state."""
    kind, platform, dataset, indices, extra = unit
    apps = state["corpus"].dataset(platform, dataset)
    if kind == "static":
        pipeline = _static_pipeline(state)
        return [pipeline.analyze_app(apps[i]) for i in indices]
    if kind == "dynamic":
        pipeline = _dynamic_pipeline(state)
        return [
            pipeline.run_app(apps[i], pre_launch_wait_s=extra) for i in indices
        ]
    if kind == "circumvent":
        pipeline = _circumvention_pipeline(state)
        return [
            pipeline.circumvent_app_pins(apps[i], set(pins))
            for i, pins in zip(indices, extra)
        ]
    raise ValueError(f"unknown work-unit kind: {kind!r}")


# -- worker-process entry points ---------------------------------------------

_WORKER_STATE: Optional[dict] = None


def _init_worker(corpus, sleep_s: float) -> None:
    """Pool initializer: receives the corpus once per worker process."""
    global _WORKER_STATE
    _WORKER_STATE = _build_state(corpus, sleep_s)


def _run_unit_in_worker(unit: WorkUnit) -> list:
    assert _WORKER_STATE is not None, "worker used before initialization"
    return _run_unit(_WORKER_STATE, unit)


class ExecutionEngine:
    """Schedules study work units under an :class:`ExecutionPlan`.

    Args:
        corpus: the app corpus (pickled to each worker once).
        plan: sharding configuration; defaults to serial.
        sleep_s: dynamic-run capture window, forwarded to worker pipelines.
        pipelines: optional ``(static, dynamic, circumvention)`` triple to
            reuse as the parent-process pipelines for serial execution
            (so a :class:`~repro.core.analysis.study.Study` and its engine
            share devices and identifiers).
    """

    def __init__(
        self,
        corpus,
        plan: Optional[ExecutionPlan] = None,
        sleep_s: float = 30.0,
        pipelines: Optional[tuple] = None,
    ):
        self.corpus = corpus
        self.plan = plan or ExecutionPlan()
        self.sleep_s = sleep_s
        self._state = _build_state(corpus, sleep_s)
        if pipelines is not None:
            static, dynamic, circumvent = pipelines
            self._state["static"] = static
            self._state["dynamic"] = dynamic
            self._state["circumvent"] = circumvent
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the worker pool (no-op for serial plans)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.plan.workers,
                initializer=_init_worker,
                initargs=(self.corpus, self.sleep_s),
            )
        return self._pool

    # -- sharding ----------------------------------------------------------

    def units_for(
        self,
        kind: str,
        key: Tuple[str, str],
        indices: Sequence[int],
        extra: object = None,
    ) -> List[WorkUnit]:
        """Shard ``indices`` of one dataset into work units.

        For ``circumvent`` units ``extra`` must be a sequence aligned with
        ``indices`` (the pinned destinations of each app); it is sliced
        along with them.  For ``dynamic`` units it is the scalar
        pre-launch wait, replicated into every unit.
        """
        indices = list(indices)
        chunk = self.plan.chunk_for(len(indices))
        units: List[WorkUnit] = []
        for start in range(0, len(indices), chunk):
            block = tuple(indices[start : start + chunk])
            if kind == "circumvent":
                unit_extra: object = tuple(extra[start : start + chunk])
            elif kind == "dynamic":
                unit_extra = float(extra or 0.0)
            else:
                unit_extra = None
            units.append((kind, key[0], key[1], block, unit_extra))
        return units

    def execute(self, units: Sequence[WorkUnit]) -> List[list]:
        """Run units, returning per-unit results in submission order.

        The serial plan runs them in-process; otherwise units are
        submitted to the pool and collected by future, so the merge order
        is the submission order regardless of completion order.
        """
        if self.plan.serial:
            return [_run_unit(self._state, unit) for unit in units]
        pool = self._ensure_pool()
        futures = [pool.submit(_run_unit_in_worker, unit) for unit in units]
        return [future.result() for future in futures]

    def map_dataset(
        self,
        kind: str,
        key: Tuple[str, str],
        indices: Sequence[int],
        extra: object = None,
    ) -> list:
        """Shard, execute and concatenate one dataset's units."""
        results = self.execute(self.units_for(kind, key, indices, extra))
        return [item for unit_result in results for item in unit_result]
