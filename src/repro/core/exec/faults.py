"""Fault injection and the study error ledger.

A week-long campaign over thousands of real apps fails in app-specific
ways — crashes on launch, store timeouts, devices wedging mid-install —
and none of those may abort the run.  The execution engine therefore
treats per-app failure as a first-class outcome: it retries, quarantines,
and records a structured :class:`UnitFailure` per app it had to give up
on, instead of raising.

Real flakiness is not testable, so every pipeline accepts an *injectable
per-app failure predicate* — a callable ``(phase, app_id) -> bool``
consulted before any work on an app (phases: ``static``, ``dynamic``,
``circumvent``).  When it fires, the pipeline raises
:class:`InjectedFault`, which travels through the engine exactly like a
genuine crash.  :class:`SeededFaults` provides the deterministic predicate
the tests and the CI fault-injection job use; :class:`TransientFaults`
makes a predicate stop firing after N attempts so retry recovery is
testable too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.util.rng import derive_seed

#: Pipeline phases a fault predicate may be consulted for.
PHASES: Tuple[str, ...] = ("static", "dynamic", "circumvent")

#: ``(phase, app_id) -> should this app's unit of work fail?``
FaultPredicate = Callable[[str, str], bool]

#: Exception types a retry can never cure.  These are programming errors
#: — a detector dereferencing an attribute that does not exist, a moved
#: module, a broken assertion — and they are deterministic: every
#: attempt, every quarantined solo re-run, would fail the same way.
#: Retrying them wastes the retry budget; quarantining them disguises a
#: code bug as per-app flakiness and buries it in the error ledger.  The
#: engine therefore propagates them immediately, so the run (or, under
#: the service, the job) fails loudly instead.  Deliberately narrow:
#: ``ValueError`` / ``KeyError`` / ``OSError`` can be data- or
#: environment-dependent and stay retryable.
NON_RETRYABLE_ERRORS = (
    AttributeError,
    TypeError,
    NameError,
    AssertionError,
    ImportError,
)


def is_retryable(exc: BaseException) -> bool:
    """Whether the engine may retry/quarantine a unit that raised ``exc``.

    The narrowing policy (DESIGN.md §13, extended to the execution
    engine): transient faults — injected faults, timeouts, crashes the
    environment can produce — earn the retry/quarantine ladder;
    programming errors (:data:`NON_RETRYABLE_ERRORS`) propagate so they
    surface as a failed run instead of being masked as per-app losses.
    """
    return not isinstance(exc, NON_RETRYABLE_ERRORS)


class InjectedFault(RuntimeError):
    """Raised by a pipeline when its fault predicate fires for an app."""

    def __init__(self, phase: str, app_id: str):
        super().__init__(f"injected fault: phase={phase} app={app_id}")
        self.phase = phase
        self.app_id = app_id

    def __reduce__(self):
        # Rebuild from (phase, app_id) — the default exception reduction
        # would replay ``args`` (the formatted message) into ``__init__``
        # and fail, and worker exceptions must pickle back to the parent.
        return (InjectedFault, (self.phase, self.app_id))


def maybe_inject(
    predicate: Optional[FaultPredicate], phase: str, app_id: str
) -> None:
    """Raise :class:`InjectedFault` if ``predicate`` fires for this app.

    Pipelines call this before doing any per-app work, so an injected
    fault never leaves partially computed state behind.
    """
    if predicate is not None and predicate(phase, app_id):
        raise InjectedFault(phase, app_id)


@dataclass(frozen=True)
class SeededFaults:
    """Deterministically fail ~``rate`` of apps, derived from a seed.

    A pure function of ``(seed, phase, app_id)``: the same apps fail on
    every attempt, in every process, under every execution plan — which
    is exactly what exercising quarantine and the error ledger needs.
    Being a frozen dataclass it pickles cleanly into worker pools.
    """

    rate: float
    seed: int = 0
    phases: Tuple[str, ...] = PHASES

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")

    def __call__(self, phase: str, app_id: str) -> bool:
        if self.rate <= 0.0 or phase not in self.phases:
            return False
        draw = derive_seed(self.seed, "fault", phase, app_id) % 1_000_000
        return draw < int(self.rate * 1_000_000)


class TransientFaults:
    """Make an inner predicate fire only for its first ``attempts`` calls.

    Models transient failures that a retry cures.  The attempt counter is
    per-instance and therefore per-process: serial plans retry in-process
    and recover; under a worker pool a retry may land on a worker with a
    fresh counter, so deterministic transient-fault tests use serial
    plans.
    """

    def __init__(self, inner: FaultPredicate, attempts: int = 1):
        self.inner = inner
        self.attempts = attempts
        self._calls: Dict[Tuple[str, str], int] = {}

    def __call__(self, phase: str, app_id: str) -> bool:
        if not self.inner(phase, app_id):
            return False
        seen = self._calls.get((phase, app_id), 0)
        self._calls[(phase, app_id)] = seen + 1
        return seen < self.attempts


@dataclass(frozen=True)
class UnitFailure:
    """One app the engine gave up on — an entry in the study error ledger.

    Attributes:
        app_id: the app whose work unit failed.
        phase: unit kind (``static`` / ``dynamic`` / ``circumvent``).
        platform / dataset: the dataset the app belongs to.
        index: the app's position inside that dataset.
        attempts: how many times its unit was attempted in total.
        error: ``repr()`` of the last exception.
        quarantined: True when the failure was isolated by a solo re-run
            of a multi-app unit (the other apps' results survived).
    """

    app_id: str
    phase: str
    platform: str
    dataset: str
    index: int
    attempts: int
    error: str
    quarantined: bool = False

    def describe(self) -> str:
        """One human-readable ledger line."""
        tag = " [quarantined]" if self.quarantined else ""
        return (
            f"{self.phase} {self.platform}/{self.dataset} {self.app_id} "
            f"attempts={self.attempts}{tag}: {self.error}"
        )
