"""Compact pool-boundary encodings of pipeline results.

What a worker computes is not what the parent needs to receive.  Result
objects drag heavy context across the process boundary: static reports
carry full :class:`~repro.pki.certificate.Certificate` objects resolved
from the CT log (the parent has the same log), dynamic results carry
enum members, ciphersuite objects and per-flow dataclass overhead for
values drawn from small closed catalogs.  This module encodes each unit
result into slim tuples on the worker side and rehydrates real result
objects on the parent side, memoized against the parent corpus:

* **interning** — values repeated across a unit's flows (SNIs, offered
  suite lists, fingerprints, parsed certificates) are stored once in a
  per-payload table and referenced by index;
* **catalog references** — ciphersuites travel as IANA names resolved
  against :data:`~repro.tls.ciphers.ALL_SUITES`, enums as positional
  indices;
* **corpus-backed rehydration** — CT resolutions travel as the pin
  strings alone; the parent re-resolves them against *its own* CT log,
  which the determinism contract guarantees is identical to the
  worker's.

The codec is part of the engine's determinism contract: ``decode(encode
(result))`` must compare equal to the original result in every field
any analysis reads, so derived study artefacts stay bit-for-bit
identical to a serial run (``tests/test_exec_payload.py`` asserts the
round trip, ``tests/test_exec_engine.py`` the end-to-end parity).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.dynamic.detector import DestinationVerdict
from repro.core.dynamic.pipeline import DynamicAppResult
from repro.core.static.ctlookup import CTResolution
from repro.core.static.nsc_analysis import NSCAnalysis
from repro.core.static.report import StaticAppReport
from repro.core.static.search import CertificateFinding, PinFinding, ScanResult
from repro.netsim.capture import TrafficCapture
from repro.netsim.flow import FlowRecord, Payload
from repro.pki.certificate import ParsedCertificate
from repro.tls.ciphers import ALL_SUITES, CipherSuite
from repro.tls.connection import ConnectionTrace
from repro.tls.records import ContentType, Direction, TLSRecord, TLSVersion
from repro.util.simtime import Timestamp

_MAGIC = "repro-unit-payload"
_VERSION = 1

# Closed catalogs: both sides run the same code, so positional indices
# are stable.  Enum definition order is source order.
_TLS_VERSIONS: Tuple[TLSVersion, ...] = tuple(TLSVersion)
_CONTENT_TYPES: Tuple[ContentType, ...] = tuple(ContentType)
_DIRECTIONS: Tuple[Direction, ...] = tuple(Direction)
_VERSION_INDEX = {member: i for i, member in enumerate(_TLS_VERSIONS)}
_CONTENT_INDEX = {member: i for i, member in enumerate(_CONTENT_TYPES)}
_DIRECTION_INDEX = {member: i for i, member in enumerate(_DIRECTIONS)}
_SUITE_BY_NAME = {suite.name: suite for suite in ALL_SUITES}

# DestinationVerdict booleans, packed into one int.
_USED_DIRECT = 1
_MITM_OBSERVED = 2
_MITM_ALL_FAILED = 4
_PINNED = 8
_EXCLUDED = 16


class _Interner:
    """Builds the per-payload value table; equal values share one slot.

    Pickle's memo only dedupes identical *objects*; equal-but-distinct
    values (the same SNI string built per flow, the same offered-suite
    tuple per connection) each pickle in full.  Interning keys on
    equality, which is where the actual redundancy is.
    """

    def __init__(self):
        self.table: list = []
        self._index: dict = {}

    def intern(self, value) -> int:
        slot = self._index.get(value)
        if slot is None:
            slot = len(self.table)
            self._index[value] = slot
            self.table.append(value)
        return slot


def _encode_suite(suite: CipherSuite):
    """A catalog suite by name; off-catalog suites by value."""
    if _SUITE_BY_NAME.get(suite.name) == suite:
        return suite.name
    return (suite.name, suite.min_version, suite.weak)


def _decode_suite(encoded) -> CipherSuite:
    if isinstance(encoded, str):
        return _SUITE_BY_NAME[encoded]
    name, min_version, weak = encoded
    return CipherSuite(name, min_version, weak)


def _encode_flow(flow: FlowRecord, intern) -> tuple:
    trace = flow.trace
    return (
        intern(flow.sni),
        flow.started_at.unix,
        intern(flow.app_id),
        intern(flow.platform),
        flow.mitm_attempted,
        None if flow.version is None else _VERSION_INDEX[flow.version],
        None if flow.cipher is None else intern(_encode_suite(flow.cipher)),
        intern(tuple(_encode_suite(s) for s in flow.offered_suites)),
        tuple(
            (
                _CONTENT_INDEX[r.content_type],
                _DIRECTION_INDEX[r.direction],
                r.length,
                _CONTENT_INDEX[r.inner_type],
            )
            for r in trace.records
        ),
        intern(trace.teardown),
        flow.handshake_completed,
        flow.plaintext_visible,
        intern(flow.client_fingerprint),
        flow.os_initiated,
        tuple(
            (p.method, p.path, p.fields, p.headers) for p in flow._payloads
        ),
        flow.gt_pinned,
        intern(flow.gt_failure_reason),
    )


def _encode_verdict(verdict: DestinationVerdict) -> tuple:
    flags = (
        (_USED_DIRECT if verdict.used_direct else 0)
        | (_MITM_OBSERVED if verdict.mitm_observed else 0)
        | (_MITM_ALL_FAILED if verdict.mitm_all_failed else 0)
        | (_PINNED if verdict.pinned else 0)
        | (_EXCLUDED if verdict.excluded else 0)
    )
    return (verdict.destination, flags)


def _cert_tuple(certificate: ParsedCertificate) -> tuple:
    return (
        certificate.subject,
        certificate.issuer,
        certificate.serial,
        certificate.not_before.unix,
        certificate.not_after.unix,
        certificate.san,
        certificate.is_ca,
        certificate.spki_bytes,
        certificate.signature,
    )


def _encode_static(report: StaticAppReport, intern) -> tuple:
    scan = report.scan
    nsc = report.nsc
    return (
        report.app_id,
        report.platform,
        tuple(
            (f.path, intern(_cert_tuple(f.certificate)), f.channel)
            for f in scan.certificates
        ),
        tuple((f.path, f.pin, f.channel) for f in scan.pins),
        (
            nsc.uses_nsc,
            nsc.has_pins,
            tuple(nsc.pins),
            nsc.misconfigured_override,
            tuple(nsc.domains),
            tuple(nsc.overridden_domains),
        ),
        # The CT resolution travels as pin strings only; the parent
        # re-resolves them against its own (identical) CT log.
        tuple(report.ct.resolved.keys()),
        tuple(report.ct.unresolved),
        report.decryption_tool,
    )


def _encode_dynamic(result: DynamicAppResult, intern) -> tuple:
    return (
        result.app_id,
        result.platform,
        tuple(_encode_verdict(v) for v in result.verdicts.values()),
        tuple(_encode_flow(f, intern) for f in result.direct_capture.flows),
        tuple(_encode_flow(f, intern) for f in result.mitm_capture.flows),
        tuple(sorted(result.excluded_destinations)),
        result.reran_with_wait,
    )


def _encode_circumvent(result, intern) -> Optional[tuple]:
    if result is None:  # apps with nothing to circumvent
        return None
    return (
        result.app_id,
        result.platform,
        tuple(sorted(result.bypassed_destinations)),
        tuple(sorted(result.resistant_destinations)),
        tuple(_encode_flow(f, intern) for f in result.hooked_capture.flows),
    )


_ENCODERS = {
    "static": _encode_static,
    "dynamic": _encode_dynamic,
    "circumvent": _encode_circumvent,
}


def encode_unit(kind: str, results: list) -> tuple:
    """Encode one unit's result list for the trip to the parent.

    Unknown kinds pass through unencoded (forward compatibility for
    callers sharding their own unit kinds through the engine).
    """
    encoder = _ENCODERS.get(kind)
    if encoder is None:
        return (_MAGIC, _VERSION, kind, None, tuple(results))
    interner = _Interner()
    items = tuple(encoder(result, interner.intern) for result in results)
    return (_MAGIC, _VERSION, kind, tuple(interner.table), items)


class Rehydrator:
    """Parent-side decoder, memoized against the parent corpus.

    One instance lives for an engine's lifetime, so shared decodes
    (bundled SDK certificates, repeated offered-suite lists, CT pin
    resolutions) are paid once per study, not once per unit.
    """

    def __init__(self, corpus):
        self._ctlog = corpus.registry.ctlog
        self._certs: Dict[tuple, ParsedCertificate] = {}
        self._suites: Dict[tuple, Tuple[CipherSuite, ...]] = {}
        self._resolved: Dict[str, list] = {}

    # -- shared decodes ----------------------------------------------------

    def _certificate(self, encoded: tuple) -> ParsedCertificate:
        cached = self._certs.get(encoded)
        if cached is None:
            (sub, iss, serial, nb, na, san, is_ca, spki, sig) = encoded
            cached = ParsedCertificate(
                subject=sub,
                issuer=iss,
                serial=serial,
                not_before=Timestamp(nb),
                not_after=Timestamp(na),
                san=san,
                is_ca=is_ca,
                spki_bytes=spki,
                signature=sig,
            )
            self._certs[encoded] = cached
        return cached

    def _offered_suites(self, encoded: tuple) -> Tuple[CipherSuite, ...]:
        cached = self._suites.get(encoded)
        if cached is None:
            cached = tuple(_decode_suite(e) for e in encoded)
            self._suites[encoded] = cached
        return cached

    def _resolve_pin(self, pin: str) -> list:
        hits = self._resolved.get(pin)
        if hits is None:
            hits = self._ctlog.search_pin(pin)
            if not hits:
                raise ValueError(
                    f"pin {pin!r} resolved in a worker's CT log but not the "
                    "parent's — the worker corpus diverged from the parent "
                    "(was the corpus mutated after generation? use "
                    "bootstrap='pickle')"
                )
            self._resolved[pin] = hits
        return list(hits)  # CTResolution holds mutable lists

    # -- per-kind decodes --------------------------------------------------

    def _decode_flow(self, encoded: tuple, table: tuple) -> FlowRecord:
        (
            sni,
            started_unix,
            app_id,
            platform,
            mitm_attempted,
            version,
            cipher,
            offered,
            records,
            teardown,
            handshake_completed,
            plaintext_visible,
            client_fingerprint,
            os_initiated,
            payloads,
            gt_pinned,
            gt_failure_reason,
        ) = encoded
        return FlowRecord(
            sni=table[sni],
            started_at=Timestamp(started_unix),
            app_id=table[app_id],
            platform=table[platform],
            mitm_attempted=mitm_attempted,
            version=None if version is None else _TLS_VERSIONS[version],
            cipher=None if cipher is None else _decode_suite(table[cipher]),
            offered_suites=self._offered_suites(table[offered]),
            trace=ConnectionTrace(
                records=[
                    TLSRecord(
                        content_type=_CONTENT_TYPES[ct],
                        direction=_DIRECTIONS[d],
                        length=length,
                        inner_type=_CONTENT_TYPES[inner],
                    )
                    for ct, d, length, inner in records
                ],
                teardown=table[teardown],
            ),
            handshake_completed=handshake_completed,
            plaintext_visible=plaintext_visible,
            client_fingerprint=table[client_fingerprint],
            os_initiated=os_initiated,
            _payloads=tuple(
                Payload(method, path, fields, headers)
                for method, path, fields, headers in payloads
            ),
            gt_pinned=gt_pinned,
            gt_failure_reason=table[gt_failure_reason],
        )

    def _decode_static(self, encoded: tuple, table: tuple) -> StaticAppReport:
        (
            app_id,
            platform,
            certs,
            pins,
            nsc,
            resolved_pins,
            unresolved,
            decryption_tool,
        ) = encoded
        uses_nsc, has_pins, nsc_pins, misconfig, domains, overridden = nsc
        resolved: Dict[str, List] = {}
        for pin in resolved_pins:
            resolved[pin] = self._resolve_pin(pin)
        return StaticAppReport(
            app_id=app_id,
            platform=platform,
            scan=ScanResult(
                certificates=[
                    CertificateFinding(
                        path=path,
                        certificate=self._certificate(table[cert]),
                        channel=channel,
                    )
                    for path, cert, channel in certs
                ],
                pins=[
                    PinFinding(path=path, pin=pin, channel=channel)
                    for path, pin, channel in pins
                ],
            ),
            nsc=NSCAnalysis(
                uses_nsc=uses_nsc,
                has_pins=has_pins,
                pins=list(nsc_pins),
                misconfigured_override=misconfig,
                domains=list(domains),
                overridden_domains=list(overridden),
            ),
            ct=CTResolution(resolved=resolved, unresolved=list(unresolved)),
            decryption_tool=decryption_tool,
        )

    def _decode_dynamic(self, encoded: tuple, table: tuple) -> DynamicAppResult:
        (
            app_id,
            platform,
            verdicts,
            direct,
            mitm,
            excluded,
            reran_with_wait,
        ) = encoded
        decoded_verdicts: Dict[str, DestinationVerdict] = {}
        for destination, flags in verdicts:
            decoded_verdicts[destination] = DestinationVerdict(
                destination=destination,
                used_direct=bool(flags & _USED_DIRECT),
                mitm_observed=bool(flags & _MITM_OBSERVED),
                mitm_all_failed=bool(flags & _MITM_ALL_FAILED),
                pinned=bool(flags & _PINNED),
                excluded=bool(flags & _EXCLUDED),
            )
        return DynamicAppResult(
            app_id=app_id,
            platform=platform,
            verdicts=decoded_verdicts,
            direct_capture=TrafficCapture(
                self._decode_flow(f, table) for f in direct
            ),
            mitm_capture=TrafficCapture(
                self._decode_flow(f, table) for f in mitm
            ),
            excluded_destinations=set(excluded),
            reran_with_wait=reran_with_wait,
        )

    def _decode_circumvent(self, encoded, table: tuple):
        from repro.core.circumvent.pipeline import CircumventionResult

        if encoded is None:
            return None
        app_id, platform, bypassed, resistant, flows = encoded
        return CircumventionResult(
            app_id=app_id,
            platform=platform,
            bypassed_destinations=set(bypassed),
            resistant_destinations=set(resistant),
            hooked_capture=TrafficCapture(
                self._decode_flow(f, table) for f in flows
            ),
        )

    # -- entry point -------------------------------------------------------

    def decode_unit(self, payload: tuple) -> list:
        """Decode one encoded unit payload back into result objects."""
        if (
            not isinstance(payload, tuple)
            or len(payload) != 5
            or payload[0] != _MAGIC
        ):
            raise ValueError("not an encoded unit payload")
        _magic, version, kind, table, items = payload
        if version != _VERSION:
            raise ValueError(f"unknown payload version {version!r}")
        if table is None:  # unknown kind: passed through unencoded
            return list(items)
        if kind == "static":
            return [self._decode_static(item, table) for item in items]
        if kind == "dynamic":
            return [self._decode_dynamic(item, table) for item in items]
        if kind == "circumvent":
            return [self._decode_circumvent(item, table) for item in items]
        raise ValueError(f"unknown encoded unit kind: {kind!r}")
