"""iOS background-traffic handling (Section 4.5).

Two exclusions keep OS-initiated traffic from polluting the verdicts:

* Apple-controlled domains (``icloud.com``, ``apple.com``,
  ``mzstatic.com``) see continuous OS traffic for the whole capture;
* "associated domains" from the app's entitlements are contacted by an
  OS daemon at install time to verify app/website association.  That
  daemon ignores user-installed CAs, so its traffic looks pinned, and it
  shares the app TLS fingerprint — the only safe treatment is to exclude
  those destinations, accepting possible false negatives.

The alternative methodology — wait two minutes after install so the
verification finishes before the capture starts — is implemented in the
pipeline's Common-dataset re-run.
"""

from __future__ import annotations

from typing import List, Set

from repro.appmodel.ios import IOSApp
from repro.appmodel.plist import Entitlements
from repro.device.ios import APPLE_BACKGROUND_DOMAINS
from repro.errors import AppModelError


def associated_domains_from_package(packaged: IOSApp) -> List[str]:
    """Read the associated domains out of the app's entitlements file.

    Reads the *package* (like the real pipeline), not the ground-truth
    app object; requires the payload to be decrypted already.
    """
    tree = packaged.ipa.payload()
    for node in tree.walk():
        if node.path.endswith(".xcent"):
            try:
                entitlements = Entitlements.from_plist_xml(node.content)
            except AppModelError:
                continue
            return list(entitlements.associated_domains)
    return []


def ios_excluded_destinations(packaged: IOSApp) -> Set[str]:
    """The full exclusion list for one iOS app's detection run."""
    excluded: Set[str] = set(APPLE_BACKGROUND_DOMAINS)
    excluded.update(associated_domains_from_package(packaged))
    return excluded
