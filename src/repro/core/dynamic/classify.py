"""Used/failed connection classification (Section 4.2.2).

**Used connection.**  For TLS 1.2 and below, any wire-visible "Encrypted
Application Data" record means the connection carried data.  TLS 1.3
disguises *all* encrypted records (handshake finished, alerts, data) as
application data, so two heuristics apply to the client's records:

1. more than two application-data records, or
2. exactly two, where the second's length differs from an encrypted
   alert's.

The reasoning: the first encrypted client record must be Handshake
Finished; a second alert-sized record is a close/alert; a third record (or
a non-alert-sized second) can only be data.

**Failed connection.**  A connection that goes unused *and* is aborted
with TCP RST or FIN — distinguishing pinning rejections and genuine
failures from connections that simply idled past the capture window.
"""

from __future__ import annotations

from repro.netsim.flow import FlowRecord
from repro.tls.records import (
    Direction,
    TLS13_ENCRYPTED_ALERT_LEN,
    TLSVersion,
    encrypted_application_data,
)


def connection_used(flow: FlowRecord, tls13_heuristics: bool = True) -> bool:
    """Did this connection carry application data? (wire-visible only)

    Args:
        flow: the captured connection.
        tls13_heuristics: apply the Section 4.2.2 TLS 1.3 rules.  With
            ``False`` (the ablation), TLS 1.3 flows are judged by the
            naive TLS 1.2 rule — any wire-visible application-data record
            counts — which mistakes disguised Finished/alert records for
            application data.
    """
    client_app_data = encrypted_application_data(
        flow.trace.records, Direction.CLIENT_TO_SERVER
    )
    if flow.version is None:
        return False
    if flow.version is not TLSVersion.TLS13 or not tls13_heuristics:
        server_app_data = encrypted_application_data(
            flow.trace.records, Direction.SERVER_TO_CLIENT
        )
        return bool(client_app_data or server_app_data)

    # TLS 1.3 heuristics.
    if len(client_app_data) > 2:
        return True
    if len(client_app_data) == 2:
        return client_app_data[1].length != TLS13_ENCRYPTED_ALERT_LEN
    return False


def connection_failed(flow: FlowRecord, tls13_heuristics: bool = True) -> bool:
    """Unused and aborted (RST or FIN) — the paper's failure definition.

    Args:
        flow: the captured connection.
        tls13_heuristics: forwarded to :func:`connection_used` — the
            Section 4.2.2 ablation must degrade "used" and "failed"
            classification together, since "failed" is defined in terms
            of "used".
    """
    if connection_used(flow, tls13_heuristics=tls13_heuristics):
        return False
    return flow.trace.aborted()
