"""Dynamic analysis pipeline (Section 4.2).

Run every app twice — without and with TLS interception — and mark a
destination *pinned* when it carries application data in the baseline but
always fails under interception.  The used/failed classifiers work from
wire-visible record patterns only (including the TLS 1.3 heuristics);
ground-truth flow fields are never consulted.
"""

from repro.core.dynamic.classify import connection_failed, connection_used
from repro.core.dynamic.detector import (
    DestinationVerdict,
    detect_pinned_destinations,
    naive_detect_pinned_destinations,
)
from repro.core.dynamic.pipeline import DynamicAppResult, DynamicPipeline
from repro.core.dynamic.background import ios_excluded_destinations

__all__ = [
    "DestinationVerdict",
    "DynamicAppResult",
    "DynamicPipeline",
    "connection_failed",
    "connection_used",
    "detect_pinned_destinations",
    "ios_excluded_destinations",
    "naive_detect_pinned_destinations",
]
