"""Dynamic-pipeline orchestration (Figure 1, steps 4–6).

One shared proxy and one device per platform; each app runs twice
(baseline and interception) through the automation harness, then the
differential detector produces per-destination verdicts.

The Common-iOS re-run (Section 4.5) is available via
:meth:`DynamicPipeline.run_dataset` with ``rerun_ios_wait=True``: after an
initial pass, apps found pinning are re-measured with a two-minute
install-to-launch wait so associated-domain verification traffic never
enters the capture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.appmodel.ios import IOSApp
from repro.core import obs
from repro.core.dynamic.background import ios_excluded_destinations
from repro.core.dynamic.detector import (
    DestinationVerdict,
    detect_pinned_destinations,
)
from repro.core.exec.faults import maybe_inject
from repro.corpus.datasets import AppCorpus
from repro.device.android import AndroidDevice
from repro.device.automation import AutomationHarness, RunConfig
from repro.device.ios import IOSDevice
from repro.netsim.capture import TrafficCapture
from repro.netsim.proxy import MITMProxy
from repro.util.rng import DeterministicRng


@dataclass
class DynamicAppResult:
    """Detection outcome for one app."""

    app_id: str
    platform: str
    verdicts: Dict[str, DestinationVerdict] = field(default_factory=dict)
    direct_capture: TrafficCapture = field(default_factory=TrafficCapture)
    mitm_capture: TrafficCapture = field(default_factory=TrafficCapture)
    excluded_destinations: Set[str] = field(default_factory=set)
    reran_with_wait: bool = False

    @property
    def pinned_destinations(self) -> Set[str]:
        return {d for d, v in self.verdicts.items() if v.pinned}

    @property
    def not_pinned_destinations(self) -> Set[str]:
        """Destinations observed (and not excluded) but not pinned."""
        return {
            d
            for d, v in self.verdicts.items()
            if not v.pinned and not v.excluded
        }

    def pins(self) -> bool:
        """Table 3's per-app predicate: at least one pinned destination."""
        return bool(self.pinned_destinations)


class DynamicPipeline:
    """Runs the two-setting experiment over corpus datasets."""

    def __init__(
        self,
        corpus: AppCorpus,
        sleep_s: float = 30.0,
        transient_failure_prob: float = 0.015,
        fault_predicate=None,
    ):
        self.corpus = corpus
        self.sleep_s = sleep_s
        self.transient_failure_prob = transient_failure_prob
        self.fault_predicate = fault_predicate
        rng = DeterministicRng(corpus.seed).child("dynamic")
        self.proxy = MITMProxy(rng.child("proxy"))
        self.android_device = AndroidDevice(
            corpus.stores.android_aosp,
            rng.child("pixel3"),
            proxy_ca=self.proxy.ca_certificate,
        )
        self.ios_device = IOSDevice(
            corpus.stores.ios,
            rng.child("iphonex"),
            proxy_ca=self.proxy.ca_certificate,
        )
        self._harnesses = {
            "android": AutomationHarness(
                self.android_device,
                corpus.registry,
                self.proxy,
                rng.child("harness", "android"),
            ),
            "ios": AutomationHarness(
                self.ios_device,
                corpus.registry,
                self.proxy,
                rng.child("harness", "ios"),
            ),
        }

    def _exclusions_for(self, packaged) -> Set[str]:
        if isinstance(packaged, IOSApp):
            if packaged.ipa.encrypted:
                # Reading entitlements needs the decrypted payload; the
                # jailbroken device makes that possible on demand.  Without
                # one, the Apple-domain exclusion (which needs no package
                # access) still applies — only the associated-domains list
                # is unavailable.
                if not self.ios_device.jailbroken:
                    from repro.device.ios import APPLE_BACKGROUND_DOMAINS

                    return set(APPLE_BACKGROUND_DOMAINS)
                packaged.ipa.decrypt()
            return ios_excluded_destinations(packaged)
        return set()

    def run_app(
        self,
        packaged,
        pre_launch_wait_s: float = 0.0,
        interact: bool = False,
    ) -> DynamicAppResult:
        """Run one app in both settings and detect pinned destinations.

        Args:
            packaged: the app.
            pre_launch_wait_s: install-to-launch delay (the Common-iOS
                re-run uses 120 s).
            interact: drive the UI so interaction-gated destinations fire
                (the §5.7 future-work variant; the paper's runs use
                False).
        """
        app = packaged.app
        maybe_inject(self.fault_predicate, "dynamic", app.app_id)
        with obs.span(
            "dynamic.app", cat="dynamic", app=app.app_id, platform=app.platform
        ):
            harness = self._harnesses[app.platform]
            base = RunConfig(
                mitm=False,
                sleep_s=self.sleep_s,
                pre_launch_wait_s=pre_launch_wait_s,
                transient_failure_prob=self.transient_failure_prob,
                interact=interact,
            )
            mitm = RunConfig(
                mitm=True,
                sleep_s=self.sleep_s,
                pre_launch_wait_s=pre_launch_wait_s,
                transient_failure_prob=self.transient_failure_prob,
                interact=interact,
            )
            with obs.span("dynamic.run_direct", cat="dynamic"):
                direct = harness.run_app(packaged, base)
            with obs.span("dynamic.run_mitm", cat="dynamic"):
                intercepted = harness.run_app(packaged, mitm)
            if pre_launch_wait_s >= 120.0 and isinstance(packaged, IOSApp):
                # The re-run methodology: verification traffic finished
                # before the capture, so only the Apple domains need
                # excluding.
                from repro.device.ios import APPLE_BACKGROUND_DOMAINS

                excluded: Set[str] = set(APPLE_BACKGROUND_DOMAINS)
            else:
                excluded = self._exclusions_for(packaged)
            with obs.span("dynamic.detect", cat="dynamic"):
                verdicts = detect_pinned_destinations(
                    direct, intercepted, excluded
                )
            return DynamicAppResult(
                app_id=app.app_id,
                platform=app.platform,
                verdicts=verdicts,
                direct_capture=direct,
                mitm_capture=intercepted,
                excluded_destinations=excluded,
                reran_with_wait=pre_launch_wait_s >= 120.0,
            )

    def run_dataset(
        self,
        platform: str,
        name: str,
        rerun_ios_wait: bool = False,
    ) -> List[DynamicAppResult]:
        """Run a whole dataset.

        Args:
            platform / name: dataset key.
            rerun_ios_wait: after the initial pass, re-run apps found
                pinning with the 120 s install-to-launch wait (the paper's
                Common-iOS methodology) and use the re-run results.
        """
        results = [
            self.run_app(packaged)
            for packaged in self.corpus.dataset(platform, name)
        ]
        if rerun_ios_wait and platform == "ios":
            packaged_by_id = {
                p.app.app_id: p for p in self.corpus.dataset(platform, name)
            }
            for index, result in enumerate(results):
                if result.pins():
                    results[index] = self.run_app(
                        packaged_by_id[result.app_id], pre_launch_wait_s=120.0
                    )
        return results
