"""Dynamic-pipeline orchestration (Figure 1, steps 4–6).

One shared proxy and one device per platform; each app runs twice
(baseline and interception) through the automation harness, then the
differential detector produces per-destination verdicts.

The per-app flow is the declarative :data:`DYNAMIC_GRAPH` stage graph
(DESIGN.md §15): run_direct → run_mitm → exclusions → detect → result,
with per-stage telemetry, fault points, and content-addressed stage
fingerprints derived from the declaration.  The install-to-launch wait
and the interaction flag are per-app parameters (``@wait`` / ``@interact``
config knobs), so the Common-iOS re-run keys differently from the
first pass.

The Common-iOS re-run (Section 4.5) is available via
:meth:`DynamicPipeline.run_dataset` with ``rerun_ios_wait=True``: after an
initial pass, apps found pinning are re-measured with a two-minute
install-to-launch wait so associated-domain verification traffic never
enters the capture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.appmodel.ios import IOSApp
from repro.core.dynamic.background import ios_excluded_destinations
from repro.core.dynamic.detector import (
    DETECTOR_VARIANTS,
    DestinationVerdict,
    detect_verdicts,
)
from repro.core.pipeline import Artifact, Stage, StageGraph
from repro.corpus.datasets import AppCorpus
from repro.device.android import AndroidDevice
from repro.device.automation import AutomationHarness, RunConfig
from repro.device.ios import IOSDevice
from repro.netsim.capture import TrafficCapture
from repro.netsim.proxy import MITMProxy
from repro.util.rng import DeterministicRng


@dataclass
class DynamicAppResult:
    """Detection outcome for one app."""

    app_id: str
    platform: str
    verdicts: Dict[str, DestinationVerdict] = field(default_factory=dict)
    direct_capture: TrafficCapture = field(default_factory=TrafficCapture)
    mitm_capture: TrafficCapture = field(default_factory=TrafficCapture)
    excluded_destinations: Set[str] = field(default_factory=set)
    reran_with_wait: bool = False

    @property
    def pinned_destinations(self) -> Set[str]:
        """Destinations detected pinning, excluded ones filtered.

        The detector never marks an excluded destination pinned (its
        verdict short-circuits before the differential), so the
        ``not v.excluded`` guard changes no output today — it exists for
        symmetry with :attr:`not_pinned_destinations`, which applies the
        same filter, and protects the invariant against future verdict
        sources that might set both flags.
        """
        return {
            d
            for d, v in self.verdicts.items()
            if v.pinned and not v.excluded
        }

    @property
    def not_pinned_destinations(self) -> Set[str]:
        """Destinations observed (and not excluded) but not pinned."""
        return {
            d
            for d, v in self.verdicts.items()
            if not v.pinned and not v.excluded
        }

    def pins(self) -> bool:
        """Table 3's per-app predicate: at least one pinned destination."""
        return bool(self.pinned_destinations)


def _run_config(ctx, a, mitm: bool) -> RunConfig:
    return RunConfig(
        mitm=mitm,
        sleep_s=ctx.sleep_s,
        pre_launch_wait_s=a["wait"],
        transient_failure_prob=ctx.transient_failure_prob,
        interact=a["interact"],
    )


def _run_direct(ctx, a):
    harness = ctx._harnesses[a["platform"]]
    return harness.run_app(a["packaged"], _run_config(ctx, a, mitm=False))


def _run_mitm(ctx, a):
    harness = ctx._harnesses[a["platform"]]
    return harness.run_app(a["packaged"], _run_config(ctx, a, mitm=True))


def _exclusions(ctx, a):
    packaged = a["packaged"]
    if a["wait"] >= 120.0 and isinstance(packaged, IOSApp):
        # The re-run methodology: verification traffic finished before
        # the capture, so only the Apple domains need excluding.
        from repro.device.ios import APPLE_BACKGROUND_DOMAINS

        return set(APPLE_BACKGROUND_DOMAINS)
    return ctx._exclusions_for(packaged)


def _detect(ctx, a):
    return detect_verdicts(
        a["run_direct"], a["run_mitm"], a["exclusions"], detector=ctx.detector
    )


def _result(ctx, a):
    return DynamicAppResult(
        app_id=a["app_id"],
        platform=a["platform"],
        verdicts=a["detect"],
        direct_capture=a["run_direct"],
        mitm_capture=a["run_mitm"],
        excluded_destinations=a["exclusions"],
        reran_with_wait=a["wait"] >= 120.0,
    )


DYNAMIC_GRAPH = StageGraph(
    kind="dynamic",
    seeds=(
        Artifact("packaged", "the packaged app under test"),
        Artifact("wait", "install-to-launch delay (per-app parameter)"),
        Artifact("interact", "drive the UI during runs (per-app parameter)"),
    ),
    stages=(
        Stage(
            name="run_direct",
            fn=_run_direct,
            config=(
                "sleep_s",
                "transient_failure_prob",
                "@wait",
                "@interact",
            ),
            cost_share=0.45,
            persist=True,
            derive=lambda r: r.direct_capture,
        ),
        Stage(
            name="run_mitm",
            fn=_run_mitm,
            config=(
                "sleep_s",
                "transient_failure_prob",
                "@wait",
                "@interact",
            ),
            cost_share=0.45,
            persist=True,
            derive=lambda r: r.mitm_capture,
        ),
        Stage(
            name="exclusions",
            fn=_exclusions,
            config=("@wait",),
            cost_share=0.01,
            persist=True,
            derive=lambda r: r.excluded_destinations,
            span=False,
        ),
        Stage(
            name="detect",
            fn=_detect,
            inputs=("run_direct", "run_mitm", "exclusions"),
            config=("detector",),
            cost_share=0.09,
            persist=True,
            derive=lambda r: r.verdicts,
        ),
        Stage(
            name="result",
            fn=_result,
            inputs=("run_direct", "run_mitm", "exclusions", "detect"),
            span=False,
        ),
    ),
    defaults={
        "sleep_s": 30.0,
        "transient_failure_prob": 0.015,
        "detector": "full",
    },
    params_from_extra=lambda extra: {
        "wait": float(extra or 0.0),
        "interact": False,
    },
)


class DynamicPipeline:
    """Runs the two-setting experiment over corpus datasets.

    Args:
        corpus: the app corpus (devices/proxy are seeded from it).
        sleep_s: capture window per run.
        transient_failure_prob: simulated per-connection flakiness.
        fault_predicate: injectable per-app failure hook.
        detector: which :data:`DETECTOR_VARIANTS` member the ``detect``
            stage runs; the stage-graph config knob behind the sweep's
            detector axis.
    """

    graph = DYNAMIC_GRAPH

    def __init__(
        self,
        corpus: AppCorpus,
        sleep_s: float = 30.0,
        transient_failure_prob: float = 0.015,
        fault_predicate=None,
        detector: str = "full",
    ):
        if detector not in DETECTOR_VARIANTS:
            raise ValueError(
                f"unknown detector {detector!r}; expected one of "
                f"{DETECTOR_VARIANTS}"
            )
        self.corpus = corpus
        self.sleep_s = sleep_s
        self.transient_failure_prob = transient_failure_prob
        self.fault_predicate = fault_predicate
        self.detector = detector
        rng = DeterministicRng(corpus.seed).child("dynamic")
        self.proxy = MITMProxy(rng.child("proxy"))
        self.android_device = AndroidDevice(
            corpus.stores.android_aosp,
            rng.child("pixel3"),
            proxy_ca=self.proxy.ca_certificate,
        )
        self.ios_device = IOSDevice(
            corpus.stores.ios,
            rng.child("iphonex"),
            proxy_ca=self.proxy.ca_certificate,
        )
        self._harnesses = {
            "android": AutomationHarness(
                self.android_device,
                corpus.registry,
                self.proxy,
                rng.child("harness", "android"),
            ),
            "ios": AutomationHarness(
                self.ios_device,
                corpus.registry,
                self.proxy,
                rng.child("harness", "ios"),
            ),
        }

    def _exclusions_for(self, packaged) -> Set[str]:
        if isinstance(packaged, IOSApp):
            if packaged.ipa.encrypted:
                # Reading entitlements needs the decrypted payload; the
                # jailbroken device makes that possible on demand.  Without
                # one, the Apple-domain exclusion (which needs no package
                # access) still applies — only the associated-domains list
                # is unavailable.
                if not self.ios_device.jailbroken:
                    from repro.device.ios import APPLE_BACKGROUND_DOMAINS

                    return set(APPLE_BACKGROUND_DOMAINS)
                packaged.ipa.decrypt()
            return ios_excluded_destinations(packaged)
        return set()

    def run_app(
        self,
        packaged,
        pre_launch_wait_s: float = 0.0,
        interact: bool = False,
        cache=None,
        dataset=None,
    ) -> DynamicAppResult:
        """Run one app in both settings and detect pinned destinations.

        Args:
            packaged: the app.
            pre_launch_wait_s: install-to-launch delay (the Common-iOS
                re-run uses 120 s).
            interact: drive the UI so interaction-gated destinations fire
                (the §5.7 future-work variant; the paper's runs use
                False).
            cache / dataset: stage-granular result store and dataset
                name; warm stages are served from the store.
        """
        return DYNAMIC_GRAPH.run(
            self,
            packaged,
            params={
                "wait": float(pre_launch_wait_s),
                "interact": bool(interact),
            },
            cache=cache,
            dataset=dataset,
        )

    def run_dataset(
        self,
        platform: str,
        name: str,
        rerun_ios_wait: bool = False,
    ) -> List[DynamicAppResult]:
        """Run a whole dataset.

        Args:
            platform / name: dataset key.
            rerun_ios_wait: after the initial pass, re-run apps found
                pinning with the 120 s install-to-launch wait (the paper's
                Common-iOS methodology) and use the re-run results.
        """
        results = [
            self.run_app(packaged)
            for packaged in self.corpus.dataset(platform, name)
        ]
        if rerun_ios_wait and platform == "ios":
            packaged_by_id = {
                p.app.app_id: p for p in self.corpus.dataset(platform, name)
            }
            for index, result in enumerate(results):
                if result.pins():
                    results[index] = self.run_app(
                        packaged_by_id[result.app_id], pre_launch_wait_s=120.0
                    )
        return results
