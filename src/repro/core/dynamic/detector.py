"""Differential pinning detection (Section 4.2.2).

A destination is marked **pinned** when:

* at least one of its connections in the *non-MITM* capture was used, and
* it has connections in the *MITM* capture, all of which failed.

The point of the differential is the confounders: TLS alerts and resets
occur for non-pinning reasons (version mismatches, server flakiness), and
apps open redundant connections they never use.  The naive detector — mark
pinned on any MITM failure — is implemented alongside for the ablation
that quantifies exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Set

from repro.core.dynamic.classify import connection_failed, connection_used
from repro.netsim.capture import TrafficCapture
from repro.servers.parties import registrable_domain

#: Detector variants selectable as a pipeline config knob.  ``full`` is
#: the paper's differential detector; the other two are the Section 5
#: ablations (the sweep's ``detector`` axis selects among the same
#: names).
DETECTOR_VARIANTS = ("full", "no-tls13", "naive")


@dataclass
class DestinationVerdict:
    """Per-destination detection outcome.

    Attributes:
        destination: the SNI hostname.
        used_direct: carried data in the baseline setting.
        mitm_observed: appeared in the interception capture.
        mitm_all_failed: every interception connection failed.
        pinned: the differential verdict.
        excluded: dropped before detection (iOS background handling).
    """

    destination: str
    used_direct: bool = False
    mitm_observed: bool = False
    mitm_all_failed: bool = False
    pinned: bool = False
    excluded: bool = False


def _apply_exclusions(
    destinations: Set[str], excluded_domains: Iterable[str]
) -> Set[str]:
    """Resolve the exclusion list against observed destinations.

    A *registrable-domain* entry (``icloud.com``) excludes all its
    subdomains — the treatment for Apple background domains.  A deeper
    hostname entry (``www.vendor.com``, an associated domain) excludes
    exactly that host: excluding the whole registrable domain would wipe
    out legitimately pinned sibling hosts like ``api.vendor.com``.
    """
    exact: Set[str] = set()
    wide: Set[str] = set()
    for entry in excluded_domains:
        entry = entry.lower()
        if entry == registrable_domain(entry):
            wide.add(entry)
        else:
            exact.add(entry)
    return {
        d
        for d in destinations
        if d in exact or registrable_domain(d) in wide
    }


def detect_pinned_destinations(
    direct: TrafficCapture,
    intercepted: TrafficCapture,
    excluded_domains: Iterable[str] = (),
    tls13_heuristics: bool = True,
) -> Dict[str, DestinationVerdict]:
    """Run the differential detector over one app's two captures.

    Args:
        direct: the non-MITM capture.
        intercepted: the MITM capture.
        excluded_domains: registrable domains to drop (Apple background
            domains, the app's associated domains).
        tls13_heuristics: apply the Section 4.2.2 TLS 1.3 used-connection
            rules; ``False`` runs the ablation, degrading *both* the
            used-direct and the all-failed legs of the differential.

    Returns:
        destination → verdict, including excluded destinations (marked).
    """
    destinations = direct.destinations() | intercepted.destinations()
    excluded = _apply_exclusions(destinations, excluded_domains)

    direct_by_dest = direct.by_destination()
    mitm_by_dest = intercepted.by_destination()

    verdicts: Dict[str, DestinationVerdict] = {}
    for destination in sorted(destinations):
        verdict = DestinationVerdict(destination=destination)
        if destination in excluded:
            verdict.excluded = True
            verdicts[destination] = verdict
            continue

        direct_flows = direct_by_dest.get(destination, [])
        mitm_flows = mitm_by_dest.get(destination, [])
        verdict.used_direct = any(
            connection_used(f, tls13_heuristics=tls13_heuristics)
            for f in direct_flows
        )
        verdict.mitm_observed = bool(mitm_flows)
        verdict.mitm_all_failed = bool(mitm_flows) and all(
            connection_failed(f, tls13_heuristics=tls13_heuristics)
            for f in mitm_flows
        )
        verdict.pinned = verdict.used_direct and verdict.mitm_all_failed
        verdicts[destination] = verdict
    return verdicts


def detect_verdicts(
    direct: TrafficCapture,
    intercepted: TrafficCapture,
    excluded_domains: Iterable[str] = (),
    detector: str = "full",
) -> Dict[str, DestinationVerdict]:
    """Run one named detector variant over an app's captures.

    The single entry point the dynamic stage graph's ``detect`` stage
    calls, keyed by the ``detector`` config knob.  ``full`` and
    ``no-tls13`` are the differential detector with and without the
    TLS 1.3 heuristics.  ``naive`` keeps the full detector's verdict
    universe (so downstream consumers see the same destinations and
    exclusion markings) but overwrites ``pinned`` with the
    any-MITM-failure flag — exactly the rewrite the sweep's detector
    ablation applies.
    """
    if detector == "full":
        return detect_pinned_destinations(
            direct, intercepted, excluded_domains
        )
    if detector == "no-tls13":
        return detect_pinned_destinations(
            direct, intercepted, excluded_domains, tls13_heuristics=False
        )
    if detector == "naive":
        flagged = naive_detect_pinned_destinations(
            intercepted, excluded_domains
        )
        verdicts = detect_pinned_destinations(
            direct, intercepted, excluded_domains
        )
        return {
            destination: DestinationVerdict(
                destination=destination,
                used_direct=verdict.used_direct,
                mitm_observed=verdict.mitm_observed,
                mitm_all_failed=verdict.mitm_all_failed,
                pinned=destination in flagged,
                excluded=verdict.excluded,
            )
            for destination, verdict in verdicts.items()
        }
    raise ValueError(
        f"unknown detector {detector!r}; expected one of {DETECTOR_VARIANTS}"
    )


def naive_detect_pinned_destinations(
    intercepted: TrafficCapture,
    excluded_domains: Iterable[str] = (),
    tls13_heuristics: bool = True,
) -> Set[str]:
    """Ablation baseline: any MITM failure ⇒ pinned.

    No baseline capture, no used-connection requirement — the approach the
    differential design exists to improve on.  ``tls13_heuristics`` is
    threaded into the failure classification so the TLS 1.3 ablation
    composes with this one.
    """
    destinations = intercepted.destinations()
    excluded = _apply_exclusions(destinations, excluded_domains)
    flagged: Set[str] = set()
    for destination, flows in intercepted.by_destination().items():
        if destination in excluded:
            continue
        if any(
            connection_failed(f, tls13_heuristics=tls13_heuristics)
            for f in flows
        ):
            flagged.add(destination)
    return flagged
