"""Circumvention pipeline: hook, re-run under MITM, collect plaintext.

For each app dynamic analysis found pinning, attach Frida, disable every
hookable check, and repeat the MITM experiment.  Traffic to bypassed
pinned destinations decrypts; traffic to resistant (custom-TLS) pinned
destinations still fails — the paper's ~51.5 % / ~66.2 % per-destination
success rates are an emergent property of the mechanism mix.

The per-app flow is the declarative :data:`CIRCUMVENT_GRAPH` stage graph
(DESIGN.md §15): hook_inject → hooked_run → verdict.  The pinned set is
a per-app parameter consumed only by the final (non-persisted) verdict
stage, so a detector flip that changes an app's pinned set still reuses
its cached hooked capture — the expensive stage keys on the hook set and
the run knobs alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Set

from repro.core.circumvent.frida import FridaSession
from repro.core.dynamic.pipeline import DynamicAppResult, DynamicPipeline
from repro.core.pipeline import Artifact, Stage, StageGraph
from repro.device.automation import RunConfig
from repro.netsim.capture import TrafficCapture


@dataclass
class CircumventionResult:
    """Outcome for one pinning app.

    Attributes:
        app_id / platform: identity.
        bypassed_destinations: pinned destinations whose traffic now
            decrypts.
        resistant_destinations: pinned destinations that still reject the
            proxy.
        hooked_capture: the MITM capture of the instrumented run.
    """

    app_id: str
    platform: str
    bypassed_destinations: Set[str] = field(default_factory=set)
    resistant_destinations: Set[str] = field(default_factory=set)
    hooked_capture: TrafficCapture = field(default_factory=TrafficCapture)

    def decrypted_pinned_flows(self) -> List:
        """Flows to pinned destinations that the proxy decrypted."""
        return [
            f
            for f in self.hooked_capture
            if f.sni in self.bypassed_destinations and f.plaintext_visible
        ]


def _hook_inject(ctx, a):
    device = ctx._device_for(a["platform"])
    session = FridaSession(device, hook_set=ctx.hook_set)
    return session.instrument(
        a["packaged"].app.runtime_policy(device.system_store)
    )


def _hooked_run(ctx, a):
    harness = ctx.dynamic._harnesses[a["platform"]]
    return harness.run_app(
        a["packaged"],
        RunConfig(
            mitm=True,
            sleep_s=ctx.sleep_s,
            transient_failure_prob=ctx.transient_failure_prob,
            policy_override=a["hook_inject"].patched_policy,
        ),
    )


def _verdict(ctx, a):
    pinned = set(a["pinned"])
    capture = a["hooked_run"]
    # A destination counts as circumvented when its pinned traffic
    # actually decrypted in the hooked run.
    decrypted = {
        f.sni for f in capture if f.plaintext_visible and f.sni in pinned
    }
    return CircumventionResult(
        app_id=a["app_id"],
        platform=a["platform"],
        bypassed_destinations=decrypted,
        resistant_destinations=pinned - decrypted,
        hooked_capture=capture,
    )


CIRCUMVENT_GRAPH = StageGraph(
    kind="circumvent",
    seeds=(
        Artifact("packaged", "the pinning app under instrumentation"),
        Artifact("pinned", "its pinned destinations (per-app parameter)"),
    ),
    stages=(
        Stage(
            name="hook_inject",
            fn=_hook_inject,
            config=("hook_set",),
            cost_share=0.10,
        ),
        Stage(
            name="hooked_run",
            fn=_hooked_run,
            inputs=("hook_inject",),
            config=("sleep_s", "transient_failure_prob"),
            cost_share=0.80,
            persist=True,
            derive=lambda r: r.hooked_capture,
        ),
        Stage(
            name="verdict",
            fn=_verdict,
            inputs=("hooked_run",),
            config=("@pinned",),
            cost_share=0.10,
            span=False,
        ),
    ),
    defaults={
        "hook_set": None,
        "sleep_s": 30.0,
        "transient_failure_prob": 0.015,
    },
    params_from_extra=lambda extra: {"pinned": tuple(sorted(extra))},
)


class CircumventionPipeline:
    """Runs hook-and-recapture over dynamic results.

    Args:
        dynamic: the dynamic pipeline whose devices/harnesses to reuse.
        fault_predicate: injectable per-app failure hook (see
            :mod:`repro.core.exec.faults`).
        hook_set: restrict Frida hooking to these library names
            (``None`` = the full catalogue); the stage graph's
            circumvention ablation knob.
    """

    graph = CIRCUMVENT_GRAPH

    def __init__(
        self,
        dynamic: DynamicPipeline,
        fault_predicate=None,
        hook_set: Optional[Iterable[str]] = None,
    ):
        self.dynamic = dynamic
        self.corpus = dynamic.corpus
        self.fault_predicate = fault_predicate
        self.hook_set: Optional[FrozenSet[str]] = (
            None if hook_set is None else frozenset(hook_set)
        )

    @property
    def sleep_s(self) -> float:
        return self.dynamic.sleep_s

    @property
    def transient_failure_prob(self) -> float:
        return self.dynamic.transient_failure_prob

    def _device_for(self, platform: str):
        return (
            self.dynamic.android_device
            if platform == "android"
            else self.dynamic.ios_device
        )

    def circumvent_app(
        self, packaged, result: DynamicAppResult
    ) -> Optional[CircumventionResult]:
        """Hook one pinning app and re-capture under MITM.

        Returns None for apps with no pinned destinations (nothing to
        circumvent).
        """
        return self.circumvent_app_pins(packaged, result.pinned_destinations)

    def circumvent_app_pins(
        self, packaged, pinned: Set[str], cache=None, dataset=None
    ) -> Optional[CircumventionResult]:
        """Like :meth:`circumvent_app`, from a bare pinned-destination set.

        The parallel engine hands workers just the pinned sets instead of
        full dynamic results (captures and verdicts would dominate the
        pickling cost for no benefit).
        """
        if not pinned:
            return None
        return CIRCUMVENT_GRAPH.run(
            self,
            packaged,
            params={"pinned": tuple(sorted(pinned))},
            cache=cache,
            dataset=dataset,
        )

    def circumvent_dataset(
        self, packaged_apps: List, results: List[DynamicAppResult]
    ) -> List[CircumventionResult]:
        out: List[CircumventionResult] = []
        by_id = {p.app.app_id: p for p in packaged_apps}
        for result in results:
            if not result.pins():
                continue
            circ = self.circumvent_app(by_id[result.app_id], result)
            if circ is not None:
                out.append(circ)
        return out

    @staticmethod
    def destination_bypass_rate(results: List[CircumventionResult]) -> float:
        """Unique pinned destinations circumvented / all unique pinned."""
        bypassed: Set[str] = set()
        all_pinned: Set[str] = set()
        for r in results:
            bypassed |= r.bypassed_destinations
            all_pinned |= r.bypassed_destinations | r.resistant_destinations
        return len(bypassed) / len(all_pinned) if all_pinned else 0.0
