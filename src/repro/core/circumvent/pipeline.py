"""Circumvention pipeline: hook, re-run under MITM, collect plaintext.

For each app dynamic analysis found pinning, attach Frida, disable every
hookable check, and repeat the MITM experiment.  Traffic to bypassed
pinned destinations decrypts; traffic to resistant (custom-TLS) pinned
destinations still fails — the paper's ~51.5 % / ~66.2 % per-destination
success rates are an emergent property of the mechanism mix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.core import obs
from repro.core.circumvent.frida import FridaSession
from repro.core.dynamic.pipeline import DynamicAppResult, DynamicPipeline
from repro.core.exec.faults import maybe_inject
from repro.device.automation import RunConfig
from repro.netsim.capture import TrafficCapture


@dataclass
class CircumventionResult:
    """Outcome for one pinning app.

    Attributes:
        app_id / platform: identity.
        bypassed_destinations: pinned destinations whose traffic now
            decrypts.
        resistant_destinations: pinned destinations that still reject the
            proxy.
        hooked_capture: the MITM capture of the instrumented run.
    """

    app_id: str
    platform: str
    bypassed_destinations: Set[str] = field(default_factory=set)
    resistant_destinations: Set[str] = field(default_factory=set)
    hooked_capture: TrafficCapture = field(default_factory=TrafficCapture)

    def decrypted_pinned_flows(self) -> List:
        """Flows to pinned destinations that the proxy decrypted."""
        return [
            f
            for f in self.hooked_capture
            if f.sni in self.bypassed_destinations and f.plaintext_visible
        ]


class CircumventionPipeline:
    """Runs hook-and-recapture over dynamic results.

    Args:
        dynamic: the dynamic pipeline whose devices/harnesses to reuse.
        fault_predicate: injectable per-app failure hook (see
            :mod:`repro.core.exec.faults`).
    """

    def __init__(self, dynamic: DynamicPipeline, fault_predicate=None):
        self.dynamic = dynamic
        self.corpus = dynamic.corpus
        self.fault_predicate = fault_predicate

    def _device_for(self, platform: str):
        return (
            self.dynamic.android_device
            if platform == "android"
            else self.dynamic.ios_device
        )

    def circumvent_app(
        self, packaged, result: DynamicAppResult
    ) -> Optional[CircumventionResult]:
        """Hook one pinning app and re-capture under MITM.

        Returns None for apps with no pinned destinations (nothing to
        circumvent).
        """
        return self.circumvent_app_pins(packaged, result.pinned_destinations)

    def circumvent_app_pins(
        self, packaged, pinned: Set[str]
    ) -> Optional[CircumventionResult]:
        """Like :meth:`circumvent_app`, from a bare pinned-destination set.

        The parallel engine hands workers just the pinned sets instead of
        full dynamic results (captures and verdicts would dominate the
        pickling cost for no benefit).
        """
        if not pinned:
            return None
        app = packaged.app
        maybe_inject(self.fault_predicate, "circumvent", app.app_id)
        with obs.span(
            "circumvent.app",
            cat="circumvent",
            app=app.app_id,
            platform=app.platform,
        ):
            device = self._device_for(app.platform)
            with obs.span("circumvent.hook_inject", cat="circumvent"):
                session = FridaSession(device)
                outcome = session.instrument(
                    app.runtime_policy(device.system_store)
                )

            harness = self.dynamic._harnesses[app.platform]
            with obs.span("circumvent.hooked_run", cat="circumvent"):
                capture = harness.run_app(
                    packaged,
                    RunConfig(
                        mitm=True,
                        sleep_s=self.dynamic.sleep_s,
                        transient_failure_prob=(
                            self.dynamic.transient_failure_prob
                        ),
                        policy_override=outcome.patched_policy,
                    ),
                )

            # A destination counts as circumvented when its pinned traffic
            # actually decrypted in the hooked run.
            decrypted = {
                f.sni
                for f in capture
                if f.plaintext_visible and f.sni in pinned
            }
            return CircumventionResult(
                app_id=app.app_id,
                platform=app.platform,
                bypassed_destinations=decrypted,
                resistant_destinations=pinned - decrypted,
                hooked_capture=capture,
            )

    def circumvent_dataset(
        self, packaged_apps: List, results: List[DynamicAppResult]
    ) -> List[CircumventionResult]:
        out: List[CircumventionResult] = []
        by_id = {p.app.app_id: p for p in packaged_apps}
        for result in results:
            if not result.pins():
                continue
            circ = self.circumvent_app(by_id[result.app_id], result)
            if circ is not None:
                out.append(circ)
        return out

    @staticmethod
    def destination_bypass_rate(results: List[CircumventionResult]) -> float:
        """Unique pinned destinations circumvented / all unique pinned."""
        bypassed: Set[str] = set()
        all_pinned: Set[str] = set()
        for r in results:
            bypassed |= r.bypassed_destinations
            all_pinned |= r.bypassed_destinations | r.resistant_destinations
        return len(bypassed) / len(all_pinned) if all_pinned else 0.0
