"""Frida instrumentation sessions.

A :class:`FridaSession` attaches to a running app (needs the jailbreak on
iOS) and rewrites its validation policy: every hookable per-domain
override becomes :class:`~repro.tls.policy.TrustAllPolicy`; custom TLS
stacks keep their pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set

from repro.core.circumvent.hooks import is_hookable
from repro.device.base import Device
from repro.errors import InstrumentationError
from repro.tls.policy import CompositePolicy, TrustAllPolicy


@dataclass
class InstrumentationOutcome:
    """What the hooks achieved for one app.

    Attributes:
        patched_policy: the policy with hookable checks disabled.
        bypassed_domains: pinned domains whose checks are now disabled.
        resistant_domains: pinned domains using unhookable (custom) TLS.
    """

    patched_policy: CompositePolicy
    bypassed_domains: Set[str] = field(default_factory=set)
    resistant_domains: Set[str] = field(default_factory=set)

    def bypass_rate(self) -> float:
        total = len(self.bypassed_domains) + len(self.resistant_domains)
        return len(self.bypassed_domains) / total if total else 0.0


class FridaSession:
    """One attach-and-hook session against one app process.

    Args:
        device: the target device (jailbreak required on iOS).
        hook_set: restrict hooking to these library names; ``None``
            loads the full hook catalogue.  The circumvention pipeline's
            ablation knob: a library outside the set keeps its pins even
            when a catalogue script exists for it.
    """

    def __init__(
        self, device: Device, hook_set: Optional[FrozenSet[str]] = None
    ):
        if device.platform == "ios" and not device.jailbroken:
            raise InstrumentationError(
                "Frida needs a jailbroken iOS device to attach"
            )
        self.device = device
        self.hook_set = hook_set

    def _hookable(self, library: str, platform: str) -> bool:
        if self.hook_set is not None and library not in self.hook_set:
            return False
        return is_hookable(library, platform)

    def instrument(self, policy: CompositePolicy) -> InstrumentationOutcome:
        """Disable every hookable pinning check in the app's policy.

        The default (system) validation is also neutralised — Frida
        scripts for circumvention disable the platform validator wholesale
        so the proxy certificate is accepted everywhere it can be.
        """
        platform = self.device.platform
        overrides: Dict[str, object] = {}
        bypassed: Set[str] = set()
        resistant: Set[str] = set()

        for domain, override in policy.overrides.items():
            if self._hookable(override.library, platform):
                overrides[domain] = TrustAllPolicy(library=override.library)
                if override.is_pinning():
                    bypassed.add(domain)
            else:
                overrides[domain] = override
                if override.is_pinning():
                    resistant.add(domain)

        if self._hookable(policy.default.library, platform):
            default = TrustAllPolicy(library=policy.default.library)
        else:
            default = policy.default

        return InstrumentationOutcome(
            patched_policy=CompositePolicy(default=default, overrides=overrides),
            bypassed_domains=bypassed,
            resistant_domains=resistant,
        )
