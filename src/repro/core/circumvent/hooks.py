"""The TLS-library hook catalog.

Each entry is a Frida script target: a library whose validation entry
points are public knowledge (and therefore hookable).  Custom TLS
implementations have no catalog entry — "developers can always use custom
TLS implementations rather than relying on popular ones" (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class HookScript:
    """One library hook.

    Attributes:
        library: the policy ``library`` label it applies to.
        platform: where the library exists.
        entry_point: the function the script replaces (documentation).
    """

    library: str
    platform: str
    entry_point: str


HOOK_CATALOG: Tuple[HookScript, ...] = (
    HookScript("okhttp", "android", "okhttp3.CertificatePinner.check"),
    HookScript("conscrypt", "android", "TrustManagerImpl.verifyChain"),
    HookScript("android-nsc", "android", "NetworkSecurityTrustManager.checkPins"),
    HookScript("platform-default", "android", "X509TrustManagerExtensions.checkServerTrusted"),
    HookScript("trustkit", "ios", "TSKPinningValidator.evaluateTrust"),
    HookScript("alamofire", "ios", "ServerTrustManager.serverTrustEvaluator"),
    HookScript("afnetworking", "ios", "AFSecurityPolicy.evaluateServerTrust"),
    HookScript("urlsession", "ios", "NSURLSession didReceiveChallenge"),
    HookScript("securetransport", "ios", "SecTrustEvaluateWithError"),
)

_BY_LIBRARY: Dict[str, HookScript] = {h.library: h for h in HOOK_CATALOG}


def is_hookable(library: str, platform: str) -> bool:
    """Can Frida disable validation for this library on this platform?"""
    hook = _BY_LIBRARY.get(library)
    return hook is not None and hook.platform == platform


def hook_for(library: str) -> HookScript:
    """Catalog lookup (KeyError for unhookable libraries)."""
    return _BY_LIBRARY[library]
