"""Pinning circumvention via run-time instrumentation (Section 4.3).

Frida hooks into known TLS libraries and disables their certificate
checks; apps using custom TLS stacks resist.  In the paper this unlocked
~51.5 % of pinned destinations on Android and ~66.2 % on iOS.
"""

from repro.core.circumvent.frida import FridaSession, InstrumentationOutcome
from repro.core.circumvent.hooks import HOOK_CATALOG, is_hookable
from repro.core.circumvent.pipeline import (
    CircumventionPipeline,
    CircumventionResult,
)

__all__ = [
    "CircumventionPipeline",
    "CircumventionResult",
    "FridaSession",
    "HOOK_CATALOG",
    "InstrumentationOutcome",
    "is_hookable",
]
