"""The StudyResults invariant auditor (DESIGN.md §12).

Cross-pipeline consistency rules over a completed
:class:`~repro.core.analysis.study.StudyResults`.  Every rule is a pure
check — the auditor never mutates results — and each re-derives its
expectation from the rawest inputs available (verdicts, captures, the
corpus, the error ledger) rather than trusting an intermediate
aggregate, so a bug in any aggregation step shows up as a disagreement
between two derivations.

The rule catalogue is data: each rule registers itself with a name and a
one-line contract, ``run_invariants`` executes them all, and the
rendered :class:`~repro.core.verify.report.AuditReport` lists every rule
checked — a silent rule is indistinguishable from a missing one
otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List

from repro.core import obs
from repro.core.analysis import prevalence as prevalence_mod
from repro.core.analysis import security as security_mod
from repro.core.analysis.consistency import summarize_pairs


@dataclass(frozen=True)
class Violation:
    """One broken invariant instance."""

    rule: str
    subject: str
    detail: str

    def describe(self) -> str:
        return f"{self.rule}: {self.subject}: {self.detail}"


@dataclass
class RuleResult:
    """Outcome of one rule over the whole results object."""

    name: str
    contract: str
    violations: List[Violation] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations


@dataclass(frozen=True)
class _Rule:
    name: str
    contract: str
    check: Callable


RULE_CATALOG: List[_Rule] = []


def rule(name: str, contract: str):
    """Register an invariant rule (a generator of :class:`Violation`)."""

    def decorate(fn):
        RULE_CATALOG.append(_Rule(name=name, contract=contract, check=fn))
        return fn

    return decorate


def _v(rule_name: str, subject: str, detail: str) -> Violation:
    return Violation(rule=rule_name, subject=subject, detail=detail)


def _ledgered(results, phase: str, platform: str, dataset: str) -> set:
    return {
        f.app_id
        for f in results.failures
        if f.phase == phase and f.platform == platform and f.dataset == dataset
    }


# -- dynamic-verdict rules ----------------------------------------------------


@rule(
    "verdict-differential",
    "pinned ⇒ used without MITM ∧ always failed under MITM ∧ not excluded",
)
def _check_verdict_differential(results) -> Iterator[Violation]:
    for key, dataset_results in sorted(results.dynamic_results.items()):
        for result in dataset_results:
            for destination, verdict in result.verdicts.items():
                if not verdict.pinned:
                    continue
                if not verdict.used_direct:
                    yield _v(
                        "verdict-differential",
                        f"{key} {result.app_id} {destination}",
                        "pinned without a used direct connection",
                    )
                if not verdict.mitm_all_failed:
                    yield _v(
                        "verdict-differential",
                        f"{key} {result.app_id} {destination}",
                        "pinned without all-failed MITM connections",
                    )
                if verdict.excluded:
                    yield _v(
                        "verdict-differential",
                        f"{key} {result.app_id} {destination}",
                        "pinned and excluded are mutually exclusive",
                    )


@rule(
    "verdict-partition",
    "pinned / not-pinned / excluded partition each app's destinations, "
    "keyed consistently",
)
def _check_verdict_partition(results) -> Iterator[Violation]:
    for key, dataset_results in sorted(results.dynamic_results.items()):
        for result in dataset_results:
            for destination, verdict in result.verdicts.items():
                if verdict.destination != destination:
                    yield _v(
                        "verdict-partition",
                        f"{key} {result.app_id}",
                        f"verdict keyed {destination!r} claims "
                        f"{verdict.destination!r}",
                    )
            pinned = result.pinned_destinations
            not_pinned = result.not_pinned_destinations
            excluded = {
                d for d, v in result.verdicts.items() if v.excluded
            }
            if pinned & not_pinned:
                yield _v(
                    "verdict-partition",
                    f"{key} {result.app_id}",
                    f"pinned ∩ not-pinned = {sorted(pinned & not_pinned)}",
                )
            union = pinned | not_pinned | excluded
            if union != set(result.verdicts):
                yield _v(
                    "verdict-partition",
                    f"{key} {result.app_id}",
                    "views do not cover all verdicts: missing "
                    f"{sorted(set(result.verdicts) - union)}",
                )


@rule(
    "capture-consistency",
    "a pinned verdict's destination appears in both captures",
)
def _check_capture_consistency(results) -> Iterator[Violation]:
    for key, dataset_results in sorted(results.dynamic_results.items()):
        for result in dataset_results:
            direct = result.direct_capture.destinations()
            mitm = result.mitm_capture.destinations()
            for destination in sorted(result.pinned_destinations):
                if destination not in direct:
                    yield _v(
                        "capture-consistency",
                        f"{key} {result.app_id} {destination}",
                        "pinned but absent from the direct capture",
                    )
                if destination not in mitm:
                    yield _v(
                        "capture-consistency",
                        f"{key} {result.app_id} {destination}",
                        "pinned but absent from the MITM capture",
                    )


# -- membership / ledger rules ------------------------------------------------


def _membership_violations(
    rule_name: str, results, results_by_key: Dict
) -> Iterator[Violation]:
    for key, items in sorted(results_by_key.items()):
        corpus_ids = {
            p.app.app_id for p in results.corpus.dataset(*key)
        }
        seen: set = set()
        for item in items:
            if item.app_id in seen:
                yield _v(
                    rule_name, f"{key}", f"duplicate app {item.app_id!r}"
                )
            seen.add(item.app_id)
            if item.app_id not in corpus_ids:
                yield _v(
                    rule_name,
                    f"{key}",
                    f"app {item.app_id!r} not in the corpus dataset",
                )


@rule(
    "dynamic-membership",
    "each dataset's dynamic results are unique apps of that dataset",
)
def _check_dynamic_membership(results) -> Iterator[Violation]:
    yield from _membership_violations(
        "dynamic-membership", results, results.dynamic_results
    )


@rule(
    "static-membership",
    "each dataset's static reports are unique apps of that dataset",
)
def _check_static_membership(results) -> Iterator[Violation]:
    yield from _membership_violations(
        "static-membership", results, results.static_reports
    )


@rule(
    "static-decryption-tool",
    "every static report names the tool that produced its file tree, "
    "valid for its platform",
)
def _check_static_decryption_tool(results) -> Iterator[Violation]:
    valid = {
        "android": {"apktool-sim"},
        "ios": {"flexdecrypt", "frida-ios-dump"},
    }
    for key in sorted(results.static_reports):
        for report in results.static_reports[key]:
            tool = report.decryption_tool
            if not tool:
                yield _v(
                    "static-decryption-tool",
                    f"{key}",
                    f"app {report.app_id!r} carries an empty tool field",
                )
            elif tool not in valid.get(report.platform, set()):
                yield _v(
                    "static-decryption-tool",
                    f"{key}",
                    f"app {report.app_id!r} reports tool {tool!r}, not a "
                    f"known {report.platform} tool",
                )


@rule(
    "ledger-exclusion",
    "every corpus app is measured or ledgered, and apps are only missing "
    "from aggregates the ledger says failed",
)
def _check_ledger_exclusion(results) -> Iterator[Violation]:
    phase_results = {
        "static": results.static_reports,
        "dynamic": results.dynamic_results,
    }
    for phase, by_key in phase_results.items():
        for key in sorted(results.corpus.datasets):
            platform, dataset = key
            corpus_ids = {
                p.app.app_id for p in results.corpus.dataset(*key)
            }
            measured = {r.app_id for r in by_key.get(key, [])}
            ledgered = _ledgered(results, phase, platform, dataset)
            missing = corpus_ids - measured - ledgered
            for app_id in sorted(missing):
                yield _v(
                    "ledger-exclusion",
                    f"{phase} {key}",
                    f"app {app_id!r} silently absent (not measured, "
                    "not in the error ledger)",
                )
            if not ledgered and measured != corpus_ids:
                extra = measured - corpus_ids
                for app_id in sorted(extra):
                    yield _v(
                        "ledger-exclusion",
                        f"{phase} {key}",
                        f"unexpected app {app_id!r} in a failure-free "
                        "aggregate",
                    )


# -- circumvention rules ------------------------------------------------------


def _pinned_sets_by_app(results, platform: str) -> Dict[str, List[frozenset]]:
    out: Dict[str, List[frozenset]] = {}
    for (plat, _), dataset_results in sorted(results.dynamic_results.items()):
        if plat != platform:
            continue
        for result in dataset_results:
            out.setdefault(result.app_id, []).append(
                frozenset(result.pinned_destinations)
            )
    return out


@rule(
    "circumvention-partition",
    "bypassed ∩ resistant = ∅ and their union is the app's detected "
    "pinned set",
)
def _check_circumvention_partition(results) -> Iterator[Violation]:
    for platform, circ_results in sorted(results.circumvention.items()):
        pinned_sets = _pinned_sets_by_app(results, platform)
        for circ in circ_results:
            overlap = circ.bypassed_destinations & circ.resistant_destinations
            if overlap:
                yield _v(
                    "circumvention-partition",
                    f"{platform} {circ.app_id}",
                    f"bypassed ∩ resistant = {sorted(overlap)}",
                )
            union = frozenset(
                circ.bypassed_destinations | circ.resistant_destinations
            )
            if union not in pinned_sets.get(circ.app_id, []):
                yield _v(
                    "circumvention-partition",
                    f"{platform} {circ.app_id}",
                    "circumvented set matches no dynamic pinned set: "
                    f"{sorted(union)}",
                )


@rule(
    "circumvention-coverage",
    "every pinning app is swept (or ledgered), and only pinning apps are",
)
def _check_circumvention_coverage(results) -> Iterator[Violation]:
    for platform in ("android", "ios"):
        circ_results = results.circumvention.get(platform, [])
        circ_ids = {c.app_id for c in circ_results}
        pinned_sets = _pinned_sets_by_app(results, platform)
        pinning_ids = {
            app_id
            for app_id, sets in pinned_sets.items()
            if any(sets)
        }
        ledgered = {
            f.app_id
            for f in results.failures
            if f.phase == "circumvent" and f.platform == platform
        }
        for app_id in sorted(pinning_ids - circ_ids - ledgered):
            yield _v(
                "circumvention-coverage",
                f"{platform} {app_id}",
                "pins but was never swept and is not in the error ledger",
            )
        for app_id in sorted(circ_ids - set(pinned_sets)):
            yield _v(
                "circumvention-coverage",
                f"{platform} {app_id}",
                "swept but has no dynamic result at all",
            )


@rule(
    "ios-rerun",
    "final Common-iOS results follow the 120 s re-run methodology",
)
def _check_ios_rerun(results) -> Iterator[Violation]:
    key = ("ios", "common")
    if key not in results.dynamic_results:
        return
    ledgered = _ledgered(results, "dynamic", *key)
    for result in results.dynamic_results[key]:
        if result.app_id in ledgered:
            continue  # a failed rerun legitimately leaves the initial pass
        if result.pins() and not result.reran_with_wait:
            yield _v(
                "ios-rerun",
                f"{key} {result.app_id}",
                "pins but was never re-measured with the 120 s wait",
            )
    for other_key, dataset_results in sorted(results.dynamic_results.items()):
        if other_key == key:
            continue
        for result in dataset_results:
            if result.reran_with_wait:
                yield _v(
                    "ios-rerun",
                    f"{other_key} {result.app_id}",
                    "re-run flag outside the Common-iOS dataset",
                )


# -- aggregation / table rules ------------------------------------------------


@rule(
    "prevalence-margins",
    "memoized Table 2/3 cells equal a fresh recomputation from raw results",
)
def _check_prevalence_margins(results) -> Iterator[Violation]:
    cells = results._prevalence_cells()
    for key in sorted(results.static_reports):
        fresh = prevalence_mod.dataset_prevalence(
            results.static_reports[key], results.dynamic_results[key]
        )
        cached = cells.get(key)
        if cached is None:
            yield _v("prevalence-margins", f"{key}", "dataset missing")
            continue
        for technique, fresh_cell in fresh.items():
            cell = cached.get(technique)
            if cell is None or (cell.count, cell.total) != (
                fresh_cell.count,
                fresh_cell.total,
            ):
                yield _v(
                    "prevalence-margins",
                    f"{key} {technique}",
                    f"cached {cell!r} != recomputed {fresh_cell!r}",
                )
            if fresh_cell.count > fresh_cell.total and not results.failures:
                yield _v(
                    "prevalence-margins",
                    f"{key} {technique}",
                    f"count {fresh_cell.count} exceeds total "
                    f"{fresh_cell.total}",
                )


@rule(
    "figure2-margins",
    "pair-summary cells sum to their margins",
)
def _check_figure2_margins(results) -> Iterator[Violation]:
    classifications = [c for _, c in results.pair_classifications()]
    summary = summarize_pairs(classifications)
    checks = [
        (
            "pins_both + android_only + ios_only == total_pinning_either",
            summary.pins_both + summary.android_only + summary.ios_only,
            summary.total_pinning_either,
        ),
        (
            "both_* verdict cells sum to pins_both",
            summary.both_consistent
            + summary.both_inconsistent
            + summary.both_inconclusive,
            summary.pins_both,
        ),
        (
            "android_only verdict cells sum to android_only",
            summary.android_only_inconsistent
            + summary.android_only_inconclusive,
            summary.android_only,
        ),
        (
            "ios_only verdict cells sum to ios_only",
            summary.ios_only_inconsistent + summary.ios_only_inconclusive,
            summary.ios_only,
        ),
    ]
    for label, cell_sum, margin in checks:
        if cell_sum != margin:
            yield _v(
                "figure2-margins", label, f"cells {cell_sum} != margin {margin}"
            )
    pinning_pairs = sum(1 for c in classifications if c.pins_either)
    if summary.total_pinning_either != pinning_pairs:
        yield _v(
            "figure2-margins",
            "total_pinning_either",
            f"{summary.total_pinning_either} != {pinning_pairs} "
            "pinning pairs",
        )


@rule(
    "cipher-margins",
    "Table 8 cells reconcile with their dataset's raw results",
)
def _check_cipher_margins(results) -> Iterator[Violation]:
    for key, dataset_results in sorted(results.dynamic_results.items()):
        cell = security_mod.analyze_ciphers(dataset_results)
        if cell.total_apps != len(dataset_results):
            yield _v(
                "cipher-margins",
                f"{key}",
                f"total_apps {cell.total_apps} != {len(dataset_results)} "
                "results",
            )
        pinning = sum(1 for r in dataset_results if r.pins())
        if cell.pinning_apps != pinning:
            yield _v(
                "cipher-margins",
                f"{key}",
                f"pinning_apps {cell.pinning_apps} != {pinning} pinning "
                "results",
            )
        for label, rate in (
            ("overall_rate", cell.overall_rate),
            ("pinning_rate", cell.pinning_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                yield _v(
                    "cipher-margins", f"{key}", f"{label} {rate} outside [0,1]"
                )


@rule(
    "pii-reconciliation",
    "Table 9 rows' counts, totals and rates agree",
)
def _check_pii_reconciliation(results) -> Iterator[Violation]:
    for platform, comparison in sorted(results.pii.items()):
        for row in comparison.rows:
            for side, count, total, rate in (
                ("pinned", row.pinned_count, row.pinned_total, row.pinned_rate),
                (
                    "non-pinned",
                    row.non_pinned_count,
                    row.non_pinned_total,
                    row.non_pinned_rate,
                ),
            ):
                if count > total:
                    yield _v(
                        "pii-reconciliation",
                        f"{platform} {row.pii_type} {side}",
                        f"count {count} exceeds total {total}",
                    )
                expected = count / total if total else 0.0
                if abs(rate - expected) > 1e-12:
                    yield _v(
                        "pii-reconciliation",
                        f"{platform} {row.pii_type} {side}",
                        f"rate {rate} != {expected} (= {count}/{total})",
                    )


@rule(
    "no-data-rendering",
    "empty denominators render as “—”, never as a numeric percentage",
)
def _check_no_data_rendering(results) -> Iterator[Violation]:
    for key, cells in sorted(results._prevalence_cells().items()):
        for technique, cell in cells.items():
            rendered = cell.render()
            if cell.total == 0 and "%" in rendered:
                yield _v(
                    "no-data-rendering",
                    f"{key} {technique}",
                    f"zero-total cell renders {rendered!r}",
                )


# -- telemetry rules ----------------------------------------------------------


@rule(
    "telemetry-ledger",
    "telemetry counters reconcile with the error ledger and store stats "
    "(skipped for uninstrumented runs)",
)
def _check_telemetry_ledger(results) -> Iterator[Violation]:
    recorder = results.telemetry
    if recorder is None:
        return
    abandoned = recorder.counter_value("exec.apps.abandoned")
    if abandoned != len(results.failures):
        yield _v(
            "telemetry-ledger",
            "exec.apps.abandoned",
            f"counter {abandoned} != {len(results.failures)} ledger entries",
        )


def run_invariants(results) -> List[RuleResult]:
    """Execute every catalogued rule over one results object.

    Telemetry: each rule increments ``verify.rule.checked``; every
    violation increments ``verify.rule.violated``.
    """
    outcomes: List[RuleResult] = []
    for entry in RULE_CATALOG:
        obs.count("verify.rule.checked")
        violations = list(entry.check(results))
        if violations:
            obs.count("verify.rule.violated", len(violations))
        outcomes.append(
            RuleResult(
                name=entry.name,
                contract=entry.contract,
                violations=violations,
            )
        )
    return outcomes
