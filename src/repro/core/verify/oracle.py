"""The ground-truth differential oracle (DESIGN.md §12).

Every detector in the reproduction is scored against the corpus's known
ground truth — the one advantage a synthetic corpus has over the
original study.  Five detectors are audited, each per platform where the
technique applies:

* ``static-material`` — content-scan certificate/pin discovery
  (Table 3's "Embedded Certificates" predicate);
* ``spki-search`` — the SPKI-hash regex channels (text + native
  strings);
* ``nsc-extraction`` — the prior-work NSC pin-set technique (Android);
* ``dynamic-destinations`` — the differential pinned-destination
  classifier, scored per destination;
* ``circumvention`` — Frida bypass verdicts vs hookability ground
  truth, scored per pinned destination.

Each score carries a *tolerance band*: the minimum precision/recall/F1
the detector must sustain.  On the calibrated corpus (any seed, default
knobs) every detector is exact — the simulation's blind spots
(obfuscation, dormancy, capture windows) are already encoded in the
truth predicates of :mod:`repro.corpus.groundtruth` — so the bands sit
near 1.0, with a small allowance on the dynamic/circumvention legs for
the harness's deterministic transient-failure model.  A detector
regression (a broken regex anchor, a mis-threaded heuristic flag, an
exclusion list applied twice) lands outside its band and fails the
audit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.core import obs
from repro.core.analysis.scoring import DetectionScore
from repro.core.dynamic.pipeline import DynamicAppResult
from repro.core.static.report import StaticAppReport
from repro.corpus import groundtruth
from repro.corpus.datasets import AppCorpus


@dataclass(frozen=True)
class ToleranceBand:
    """Paper-calibrated floor for one detector's metrics."""

    min_precision: float = 1.0
    min_recall: float = 1.0
    min_f1: float = 1.0

    def violations(self, score: DetectionScore) -> List[str]:
        out: List[str] = []
        if score.precision < self.min_precision:
            out.append(
                f"precision {score.precision:.4f} < {self.min_precision:.4f}"
            )
        if score.recall < self.min_recall:
            out.append(f"recall {score.recall:.4f} < {self.min_recall:.4f}")
        if score.f1 < self.min_f1:
            out.append(f"F1 {score.f1:.4f} < {self.min_f1:.4f}")
        return out


#: Default bands.  The static techniques are deterministic functions of
#: the package tree, so they must be exact.  The dynamic and
#: circumvention legs ride the automation harness, whose deterministic
#: transient-failure model (~1.5 % per connection) can cost isolated
#: destinations at unlucky seeds; their floors leave room for that and
#: nothing more.
DEFAULT_BANDS: Dict[str, ToleranceBand] = {
    "static-material": ToleranceBand(),
    "spki-search": ToleranceBand(),
    "nsc-extraction": ToleranceBand(),
    "dynamic-destinations": ToleranceBand(0.97, 0.97, 0.97),
    "circumvention": ToleranceBand(0.95, 0.95, 0.95),
}


@dataclass
class OracleScore:
    """One detector's score on one platform, judged against its band."""

    detector: str
    platform: str
    score: DetectionScore
    band: ToleranceBand
    violations: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        state = "ok" if self.passed else "OUT OF BAND: " + "; ".join(
            self.violations
        )
        return (
            f"{self.detector}/{self.platform} "
            f"P={self.score.precision:.4f} R={self.score.recall:.4f} "
            f"F1={self.score.f1:.4f} ({state})"
        )


def _binary_score(pairs: Iterable) -> DetectionScore:
    """Confusion counts over (truth, detected) boolean pairs."""
    score = DetectionScore()
    for truth, detected in pairs:
        if truth and detected:
            score.true_positives += 1
        elif detected and not truth:
            score.false_positives += 1
        elif truth and not detected:
            score.false_negatives += 1
    return score


def score_static_material(
    corpus: AppCorpus, reports: Iterable[StaticAppReport]
) -> DetectionScore:
    """Content-scan discovery vs :func:`groundtruth.embeds_static_material`."""
    return _binary_score(
        (
            groundtruth.embeds_static_material(corpus.find_app(r.app_id).app),
            r.embedded_material,
        )
        for r in reports
    )


def score_spki_search(
    corpus: AppCorpus, reports: Iterable[StaticAppReport]
) -> DetectionScore:
    """SPKI-hash channels vs :func:`groundtruth.has_greppable_spki_pins`."""
    return _binary_score(
        (
            groundtruth.has_greppable_spki_pins(corpus.find_app(r.app_id).app),
            bool(r.scan.unique_pins()),
        )
        for r in reports
    )


def score_nsc_extraction(
    corpus: AppCorpus, reports: Iterable[StaticAppReport]
) -> DetectionScore:
    """NSC pin-set extraction vs :func:`groundtruth.has_nsc_pin_sets`."""
    return _binary_score(
        (
            groundtruth.has_nsc_pin_sets(corpus.find_app(r.app_id).app),
            r.nsc_pins,
        )
        for r in reports
    )


def score_dynamic_destinations(
    corpus: AppCorpus,
    results: Iterable[DynamicAppResult],
    window_s: float = 30.0,
) -> DetectionScore:
    """Differential classifier vs runtime truth, per destination."""
    score = DetectionScore()
    for result in results:
        truth = groundtruth.runtime_pinned_within(
            corpus.find_app(result.app_id).app, window_s
        )
        score.add(truth, set(result.pinned_destinations))
    return score


def score_circumvention(
    corpus: AppCorpus, platform: str, circumvention_results: Iterable
) -> DetectionScore:
    """Bypass verdicts vs hookability truth, per pinned destination.

    "Positive" is *bypassed*: a hookable destination the hooked run
    failed to decrypt is a false negative; an unhookable (custom-TLS)
    destination reported bypassed is a false positive.
    """
    score = DetectionScore()
    for circ in circumvention_results:
        pinned = circ.bypassed_destinations | circ.resistant_destinations
        truth_bypassable, _ = groundtruth.bypassable_split(
            corpus, circ.app_id, platform, pinned
        )
        score.add(truth_bypassable, set(circ.bypassed_destinations))
    return score


def run_oracle(
    results,
    window_s: float = 30.0,
    bands: Optional[Dict[str, ToleranceBand]] = None,
) -> List[OracleScore]:
    """Score every detector in a :class:`StudyResults` against truth.

    Args:
        results: a completed study run.
        window_s: the run's capture window (``Study.sleep_s``) — the
            dynamic truth predicate depends on it.
        bands: tolerance overrides; defaults to :data:`DEFAULT_BANDS`.
    """
    bands = dict(DEFAULT_BANDS, **(bands or {}))
    corpus = results.corpus
    scores: List[OracleScore] = []

    def judge(detector: str, platform: str, score: DetectionScore) -> None:
        band = bands[detector]
        entry = OracleScore(
            detector=detector,
            platform=platform,
            score=score,
            band=band,
            violations=band.violations(score),
        )
        obs.count("verify.oracle.scored")
        if not entry.passed:
            obs.count("verify.oracle.out_of_band")
        scores.append(entry)

    for platform in ("android", "ios"):
        reports = list(results.static_by_app(platform).values())
        dynamic = list(results.dynamic_by_app(platform).values())
        judge(
            "static-material",
            platform,
            score_static_material(corpus, reports),
        )
        judge("spki-search", platform, score_spki_search(corpus, reports))
        if platform == "android":
            judge(
                "nsc-extraction",
                platform,
                score_nsc_extraction(corpus, reports),
            )
        judge(
            "dynamic-destinations",
            platform,
            score_dynamic_destinations(corpus, dynamic, window_s),
        )
        judge(
            "circumvention",
            platform,
            score_circumvention(
                corpus, platform, results.circumvention.get(platform, ())
            ),
        )
    return scores
