"""Audit orchestration and the :class:`AuditReport` artefact.

:func:`audit_study` is the verification layer's one entry point: it runs
the ground-truth oracle and the invariant auditor over a completed
:class:`~repro.core.analysis.study.StudyResults` and returns an
:class:`AuditReport` — renderable as tables (for humans), serialisable
as JSON (for CI, validated by ``schemas/audit_report.schema.json``).

At ``level="deep"`` the audit additionally re-executes the study
serially from the same corpus and compares every rendered table byte for
byte — the determinism contract that resume/store/parallel runs must
also meet (CI exercises those variants directly; the deep audit makes
the serial baseline self-checking).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.verify.invariants import RuleResult, run_invariants
from repro.core.verify.oracle import OracleScore, ToleranceBand, run_oracle
from repro.reporting.tables import Table

AUDIT_LEVELS = ("standard", "deep")


@dataclass
class DeterminismCheck:
    """Outcome of the deep audit's serial re-execution."""

    baseline_digest: str
    rerun_digest: str

    @property
    def passed(self) -> bool:
        return self.baseline_digest == self.rerun_digest


@dataclass
class AuditReport:
    """Everything one audit pass established."""

    level: str
    window_s: float
    oracle_scores: List[OracleScore] = field(default_factory=list)
    rule_results: List[RuleResult] = field(default_factory=list)
    determinism: Optional[DeterminismCheck] = None

    @property
    def invariant_violations(self) -> List:
        return [
            violation
            for result in self.rule_results
            for violation in result.violations
        ]

    @property
    def oracle_failures(self) -> List[OracleScore]:
        return [s for s in self.oracle_scores if not s.passed]

    @property
    def passed(self) -> bool:
        return (
            not self.invariant_violations
            and not self.oracle_failures
            and (self.determinism is None or self.determinism.passed)
        )

    # -- rendering ------------------------------------------------------------

    def oracle_table(self) -> Table:
        table = Table(
            title="Audit: detector scores vs corpus ground truth",
            headers=[
                "Detector",
                "Platform",
                "TP",
                "FP",
                "FN",
                "Precision",
                "Recall",
                "F1",
                "Band (P/R/F1)",
                "Verdict",
            ],
        )
        for entry in self.oracle_scores:
            score, band = entry.score, entry.band
            table.add_row(
                entry.detector,
                entry.platform,
                score.true_positives,
                score.false_positives,
                score.false_negatives,
                f"{score.precision:.4f}",
                f"{score.recall:.4f}",
                f"{score.f1:.4f}",
                f"{band.min_precision:.2f}/{band.min_recall:.2f}"
                f"/{band.min_f1:.2f}",
                "ok" if entry.passed else "OUT OF BAND",
            )
        return table

    def invariant_table(self) -> Table:
        table = Table(
            title="Audit: StudyResults invariants",
            headers=["Rule", "Contract", "Violations", "Verdict"],
        )
        for result in self.rule_results:
            table.add_row(
                result.name,
                result.contract,
                len(result.violations),
                "ok" if result.passed else "VIOLATED",
            )
        return table

    def render(self) -> str:
        lines = [self.oracle_table().render(), "", self.invariant_table().render()]
        for violation in self.invariant_violations:
            lines.append(f"  !! {violation.describe()}")
        if self.determinism is not None:
            state = "ok" if self.determinism.passed else "MISMATCH"
            lines.append("")
            lines.append(
                f"Determinism (serial re-run digest): {state} "
                f"[{self.determinism.baseline_digest[:16]} vs "
                f"{self.determinism.rerun_digest[:16]}]"
            )
        lines.append("")
        lines.append(f"Audit verdict: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)

    # -- serialisation --------------------------------------------------------

    def to_json_dict(self) -> Dict:
        return {
            "level": self.level,
            "window_s": self.window_s,
            "passed": self.passed,
            "oracle": [
                {
                    "detector": s.detector,
                    "platform": s.platform,
                    "true_positives": s.score.true_positives,
                    "false_positives": s.score.false_positives,
                    "false_negatives": s.score.false_negatives,
                    "precision": s.score.precision,
                    "recall": s.score.recall,
                    "f1": s.score.f1,
                    "band": {
                        "min_precision": s.band.min_precision,
                        "min_recall": s.band.min_recall,
                        "min_f1": s.band.min_f1,
                    },
                    "passed": s.passed,
                    "violations": list(s.violations),
                }
                for s in self.oracle_scores
            ],
            "invariants": [
                {
                    "rule": r.name,
                    "contract": r.contract,
                    "passed": r.passed,
                    "violations": [
                        {
                            "subject": v.subject,
                            "detail": v.detail,
                        }
                        for v in r.violations
                    ],
                }
                for r in self.rule_results
            ],
            "determinism": (
                None
                if self.determinism is None
                else {
                    "baseline_digest": self.determinism.baseline_digest,
                    "rerun_digest": self.determinism.rerun_digest,
                    "passed": self.determinism.passed,
                }
            ),
        }


def study_digest(results) -> str:
    """SHA-256 over every rendered table/figure — the byte-identity key
    the determinism contract is stated in (what ``repro study`` prints)."""
    renderings: List[str] = []
    for name in (
        "table1", "table2", "table3", "table4", "table5", "table6",
        "table7", "table8", "table9", "figure2", "figure3", "figure5",
    ):
        renderings.append(getattr(results, name)().render())
    figure4a, figure4b = results.figure4()
    renderings.append(figure4a.render())
    renderings.append(figure4b.render())
    for platform in ("android", "ios"):
        renderings.append(f"{platform}:{results.circumvention_rate(platform):.6f}")
    renderings.extend(results.error_ledger())
    payload = "\n\x1e\n".join(renderings).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def _determinism_check(results) -> DeterminismCheck:
    """Re-run the study serially from the same corpus and compare digests."""
    from repro.core import obs
    from repro.core.analysis.study import Study

    baseline = study_digest(results)
    # Detach any active recorder for the duration: the audited run's
    # telemetry must describe that run alone, not absorb the re-run's
    # spans and counters (which would, e.g., double the abandonment
    # counter the telemetry-ledger invariant reconciles).
    active = obs.get_recorder()
    obs.set_recorder(None)
    try:
        rerun_results = Study(
            results.corpus, sleep_s=results_window(results)
        ).run()
    finally:
        obs.set_recorder(active)
    return DeterminismCheck(
        baseline_digest=baseline, rerun_digest=study_digest(rerun_results)
    )


def results_window(results) -> float:
    """Best-effort capture window of a results object (default 30 s)."""
    window = getattr(results, "window_s", None)
    return float(window) if window else 30.0


def audit_study(
    results,
    level: str = "standard",
    window_s: Optional[float] = None,
    bands: Optional[Dict[str, ToleranceBand]] = None,
) -> AuditReport:
    """Audit one completed study run.

    Args:
        results: the :class:`StudyResults` to audit.
        level: ``"standard"`` (oracle + invariants) or ``"deep"`` (adds
            the serial re-execution determinism check).
        window_s: the run's capture window; defaults to the window
            recorded on the results (or 30 s).
        bands: per-detector tolerance overrides.

    Raises:
        ValueError: for an unknown level.
    """
    if level not in AUDIT_LEVELS:
        raise ValueError(
            f"unknown audit level {level!r}; expected one of {AUDIT_LEVELS}"
        )
    if window_s is None:
        window_s = results_window(results)
    report = AuditReport(level=level, window_s=window_s)
    report.oracle_scores = run_oracle(results, window_s=window_s, bands=bands)
    report.rule_results = run_invariants(results)
    if level == "deep":
        report.determinism = _determinism_check(results)
    return report
