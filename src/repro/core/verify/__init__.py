"""Ground-truth verification layer (DESIGN.md §12).

Turns the corpus's known ground truth into a permanent bug detector:

* :mod:`repro.core.verify.oracle` — scores every detector (static
  content scans, SPKI search, NSC extraction, dynamic classification,
  circumvention) against corpus truth with paper-calibrated tolerance
  bands;
* :mod:`repro.core.verify.invariants` — ~15 cross-pipeline consistency
  rules over :class:`~repro.core.analysis.study.StudyResults`;
* :mod:`repro.core.verify.report` — the :class:`AuditReport` artefact
  and the :func:`audit_study` entry point (``Study.run(audit=...)``,
  ``repro verify``, ``repro study --audit``).
"""

from repro.core.verify.invariants import (
    RULE_CATALOG,
    RuleResult,
    Violation,
    run_invariants,
)
from repro.core.verify.oracle import (
    DEFAULT_BANDS,
    OracleScore,
    ToleranceBand,
    run_oracle,
)
from repro.core.verify.report import (
    AUDIT_LEVELS,
    AuditReport,
    DeterminismCheck,
    audit_study,
    study_digest,
)

__all__ = [
    "AUDIT_LEVELS",
    "AuditReport",
    "DEFAULT_BANDS",
    "DeterminismCheck",
    "OracleScore",
    "RULE_CATALOG",
    "RuleResult",
    "ToleranceBand",
    "Violation",
    "audit_study",
    "run_invariants",
    "run_oracle",
    "study_digest",
]
