"""Synthetic mobile applications.

An app in this simulation has two halves:

* a **package** — the artefact static analysis sees: a file tree shaped
  like a decompiled APK or a decrypted IPA, with manifests, NSC/ATS
  configuration, embedded certificates, SPKI pin strings in code, and
  third-party SDK directories;
* a **runtime** — the behaviour dynamic analysis sees: which destinations
  the app contacts in its first seconds, what it sends, and the validation
  policy (pinning included) each connection uses.

The two halves are generated from one ground-truth
:class:`~repro.appmodel.pinning.PinningSpec` list, so static/dynamic
disagreement (dormant code, obfuscation, dynamically loaded pins) is a
controlled property of the corpus rather than an accident.
"""

from repro.appmodel.android import AndroidApp
from repro.appmodel.app import MobileApp
from repro.appmodel.behavior import DestinationUsage, NetworkBehavior
from repro.appmodel.filetree import FileNode, FileTree
from repro.appmodel.ios import IOSApp
from repro.appmodel.pinning import PinMechanism, PinningSpec, PinScope
from repro.appmodel.sdk import SDK_CATALOG, ThirdPartySDK

__all__ = [
    "AndroidApp",
    "DestinationUsage",
    "FileNode",
    "FileTree",
    "IOSApp",
    "MobileApp",
    "NetworkBehavior",
    "PinMechanism",
    "PinningSpec",
    "PinScope",
    "SDK_CATALOG",
    "ThirdPartySDK",
]
