"""iOS app packages (IPA with FairPlay-style encryption).

iOS apps from the App Store are encrypted; static analysis must first
obtain a decrypted payload (the paper uses Flexdecrypt or Frida-iOS-Dump
on a jailbroken iPhone, Section 4.1.2).  :class:`IPA` models that gate:
the payload file tree is only reachable after :meth:`IPA.decrypt`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.appmodel.app import MobileApp
from repro.appmodel.filetree import FileTree
from repro.appmodel.package import (
    PackagingContext,
    ca_bundle_pem,
    pin_declaration_lines,
)
from repro.appmodel.pinning import PinForm, PinMechanism
from repro.appmodel.plist import ATSPinnedDomain, Entitlements, InfoPlist
from repro.appmodel.sdk import sdk_by_name
from repro.errors import AppModelError, PackageEncryptedError
from repro.util.encoding import b64encode


@dataclass
class IPA:
    """An App Store package.

    Attributes:
        bundle_id: app identity.
        encrypted: FairPlay encryption state.  While True, the payload is
            unreadable.
    """

    bundle_id: str
    encrypted: bool = True
    _payload: FileTree = field(default_factory=FileTree)

    def payload(self) -> FileTree:
        """The app directory tree.

        Raises:
            PackageEncryptedError: if the package has not been decrypted.
        """
        if self.encrypted:
            raise PackageEncryptedError(
                f"{self.bundle_id}: payload is FairPlay-encrypted; decrypt first"
            )
        return self._payload

    def decrypt(self) -> FileTree:
        """Mark the payload decrypted and return it.

        Callers model the decryption *capability* (jailbroken device,
        Flexdecrypt vs Frida-iOS-Dump) in
        :mod:`repro.core.static.decompile`; the IPA itself only tracks
        state.
        """
        self.encrypted = False
        return self._payload


@dataclass
class IOSApp:
    """A packaged iOS app."""

    app: MobileApp
    ipa: IPA

    @property
    def app_id(self) -> str:
        return self.app.app_id


def _app_dir(app: MobileApp) -> str:
    name = app.name.replace(" ", "")
    return f"Payload/{name}.app"


def _emit_frameworks(app: MobileApp, tree: FileTree, ctx: PackagingContext) -> None:
    base = _app_dir(app)
    rng = ctx.rng.child("ios-code", app.app_id)
    for sdk_name in app.sdk_names:
        sdk = sdk_by_name(sdk_name)
        if sdk is None or not sdk.available_on("ios"):
            continue
        framework_path = sdk.code_path_ios or (
            f"Frameworks/{sdk_name.replace(' ', '')}.framework"
        )
        binary_name = framework_path.rsplit("/", 1)[-1].replace(".framework", "")
        tree.add(
            f"{base}/{framework_path}/{binary_name}",
            f"{sdk.domains[0] if sdk.domains else 'init'}\n__TEXT,__cstring",
            binary=True,
        )
        tree.add(
            f"{base}/{framework_path}/Info.plist",
            InfoPlist(
                bundle_id=f"com.sdk.{binary_name.lower()}", bundle_name=binary_name
            ).to_plist_xml(),
        )
        if sdk.embeds_certificates and not sdk.pins:
            bundle = ca_bundle_pem(ctx, count=rng.randint(2, 4))
            if bundle:
                tree.add(f"{base}/{framework_path}/roots.pem", bundle)


def _emit_pin_material(app: MobileApp, tree: FileTree) -> None:
    base = _app_dir(app)
    main_binary = f"{base}/{app.name.replace(' ', '')}"
    main_strings: List[str] = []

    for index, spec in enumerate(app.pinning_specs):
        code_path = spec.code_path
        # SDK material ships inside its framework directory (attribution
        # signal); first-party material at the bundle root.
        cert_dir = f"{base}/{code_path}" if code_path else base
        if spec.form is PinForm.RAW_CERTIFICATE:
            for domain in spec.domains:
                resolved = spec.resolved.get(domain)
                if resolved is None:
                    raise AppModelError(f"spec for {domain!r} unresolved")
                safe = domain.replace(".", "_")
                if spec.obfuscated:
                    tree.add(
                        f"{cert_dir}/{safe}.blob",
                        b64encode(resolved.pem.encode())[::-1],
                    )
                else:
                    # iOS convention: DER-ish .cer files in the bundle.
                    tree.add(
                        f"{cert_dir}/{safe}.cer",
                        b64encode(resolved.pem.encode("utf-8")),
                    )
        else:
            lines = pin_declaration_lines(spec, style="objc")
            if code_path:
                binary_name = code_path.rsplit("/", 1)[-1].replace(".framework", "")
                tree.add(
                    f"{base}/{code_path}/{binary_name}",
                    "\n".join(lines) + "\n__TEXT,__cstring",
                    binary=True,
                )
            else:
                main_strings.extend(lines)

    content = "\n".join(main_strings) if main_strings else "main"
    tree.add(main_binary, content + "\n__mh_execute_header", binary=True)


def build_ios_package(app: MobileApp, ctx: PackagingContext) -> IOSApp:
    """Materialise the IPA for an app (payload starts encrypted).

    Raises:
        AppModelError: if the app is not an iOS app or a spec is
            unresolved.
    """
    if app.platform != "ios":
        raise AppModelError(f"{app.app_id!r} is not an iOS app")

    tree = FileTree()
    base = _app_dir(app)
    info = InfoPlist(bundle_id=app.app_id, bundle_name=app.name)
    # Some apps ship iOS 14 NSPinnedDomains alongside code pinning; the
    # study's device (iOS 13.6) ignores it and so does the static pipeline.
    for spec in app.pinning_specs:
        if spec.mechanism is PinMechanism.URLSESSION and not spec.obfuscated:
            for domain in spec.domains:
                resolved = spec.resolved.get(domain)
                if resolved is None:
                    continue
                info.ats_pinned_domains.append(
                    ATSPinnedDomain(
                        domain=domain,
                        spki_sha256_base64=tuple(
                            p.split("/", 1)[1] for p in resolved.pin_strings
                        ),
                    )
                )
            break
    tree.add(f"{base}/Info.plist", info.to_plist_xml())
    tree.add(
        f"{base}/archived-expanded-entitlements.xcent",
        Entitlements(
            bundle_id=app.app_id, associated_domains=app.associated_domains
        ).to_plist_xml(),
    )

    _emit_frameworks(app, tree, ctx)
    _emit_pin_material(app, tree)
    tree.add(f"{base}/embedded.mobileprovision", "provisioning-profile", binary=True)

    return IOSApp(app=app, ipa=IPA(bundle_id=app.app_id, _payload=tree))
