"""App network behaviour — what the runtime does in its first seconds.

Dynamic analysis launches each app cold, with no interaction, and records
whatever traffic it produces in a sleep window (30 s by default, after the
paper's calibration in Section 4.2.1).  :class:`NetworkBehavior` describes
that traffic: destinations, start offsets, connection counts (including
redundant connections that are opened but never used), payloads and the
PII they carry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.netsim.flow import Payload


@dataclass
class DestinationUsage:
    """The app's traffic to one destination during a cold start.

    Attributes:
        hostname: destination (and SNI value).
        start_offset_s: seconds after launch of the first connection —
            which is what makes longer sleep windows observe more
            handshakes (Section 4.2.1's 15/30/60 s calibration).
        used_connections: connections that carry application data.
        redundant_connections: connections established and left idle
            (HTTP/2 connection racing, pre-warming) — the confounder the
            used-connection heuristic must not misread.
        payload_fields: key→value body fields per request; PII values use
            the device-identifier placeholders from
            :mod:`repro.core.pii.types`.
        source: ``"first-party"`` or the SDK name that owns the traffic.
        weak_ciphers: this destination's client config advertises weak
            suites (drives Table 8).
        requires_interaction: only triggered by user interaction (login,
            checkout).  The study performs none (§4.2.1), so this traffic
            is invisible to it — the §5.6 "Limited App Interaction"
            blind spot and the §5.7 future-work target.
    """

    hostname: str
    start_offset_s: float = 0.0
    used_connections: int = 1
    redundant_connections: int = 0
    payload_fields: Tuple[Tuple[str, str], ...] = ()
    source: str = "first-party"
    weak_ciphers: bool = False
    requires_interaction: bool = False

    def payloads(self) -> List[Payload]:
        """One payload per used connection."""
        return [
            Payload(method="POST", path="/v1/events", fields=self.payload_fields)
            for _ in range(self.used_connections)
        ]

    def starts_within(self, window_s: float) -> bool:
        return self.start_offset_s <= window_s

    def total_connections(self) -> int:
        return self.used_connections + self.redundant_connections


@dataclass
class NetworkBehavior:
    """Everything the app's runtime does on the network at cold start."""

    usages: List[DestinationUsage] = field(default_factory=list)

    def usages_within(
        self, window_s: float, with_interaction: bool = False
    ) -> List[DestinationUsage]:
        """Destinations whose first connection starts inside the window.

        Args:
            window_s: the capture window.
            with_interaction: include interaction-gated destinations —
                what a harness that logs in and taps around would see.
        """
        return [
            u
            for u in self.usages
            if u.starts_within(window_s)
            and (with_interaction or not u.requires_interaction)
        ]

    def destinations(self) -> List[str]:
        return [u.hostname for u in self.usages]

    def usage_for(self, hostname: str) -> Optional[DestinationUsage]:
        hostname = hostname.lower()
        for usage in self.usages:
            if usage.hostname.lower() == hostname:
                return usage
        return None

    def expected_handshakes(self, window_s: float) -> int:
        """Handshake count a capture window of ``window_s`` would observe."""
        return sum(u.total_connections() for u in self.usages_within(window_s))
