"""The cross-platform app model.

:class:`MobileApp` is the simulation's ground-truth record of one app on
one platform: identity, store metadata, embedded SDKs, pinning specs and
network behaviour.  Android/iOS package materialisation lives in
:mod:`repro.appmodel.android` and :mod:`repro.appmodel.ios`; this module
owns what both share, most importantly the **runtime validation policy**
construction that dynamic analysis exercises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.appmodel.behavior import NetworkBehavior
from repro.appmodel.pinning import PinForm, PinMechanism, PinningSpec
from repro.errors import AppModelError
from repro.pki.store import RootStore
from repro.tls.ciphers import (
    CipherSuite,
    MODERN_SUITES,
    TLS12_STRONG_SUITES,
    TLS13_SUITES,
    WEAK_SUITES,
)
from repro.tls.policy import CompositePolicy, NSCPinPolicy, PinnedCertificatePolicy, SpkiPinPolicy, SystemValidationPolicy, ValidationPolicy
from repro.tls.records import TLSVersion

#: Client suite orders per platform.  The iOS 13-era system stack still
#: advertised 3DES CBC suites in its ClientHello, which is why Table 8 sees
#: weak ciphers in >90 % of iOS apps overall; Android 11's default Conscrypt
#: config did not.
IOS_SYSTEM_SUITES: Tuple[CipherSuite, ...] = MODERN_SUITES + (WEAK_SUITES[0],)
ANDROID_SYSTEM_SUITES: Tuple[CipherSuite, ...] = MODERN_SUITES


@dataclass
class MobileApp:
    """One app on one platform.

    Attributes:
        app_id: package name (Android) or bundle id (iOS).
        name: display name.
        platform: ``"android"`` or ``"ios"``.
        category: store category label.
        owner: publishing organisation (party attribution anchor).
        store_rank: popularity rank within its store listing.
        sdk_names: embedded third-party SDKs (catalog names).
        pinning_specs: ground-truth pinning decisions (first- and
            third-party).
        behavior: cold-start network behaviour.
        associated_domains: iOS associated domains (entitlements).
        uses_nsc: Android — ships an NSC file (possibly without pins).
        obfuscated_code: code-level obfuscation; hides string pins from
            the static scanner.
        weak_system_stack: the app's default TLS configuration advertises
            legacy suites (Table 8's "Overall" column counts these).
        cross_platform_id: shared identity linking Android and iOS builds
            of the same product (the Common dataset key).
    """

    app_id: str
    name: str
    platform: str
    category: str
    owner: str
    store_rank: int = 0
    sdk_names: List[str] = field(default_factory=list)
    pinning_specs: List[PinningSpec] = field(default_factory=list)
    behavior: NetworkBehavior = field(default_factory=NetworkBehavior)
    associated_domains: Tuple[str, ...] = ()
    uses_nsc: bool = False
    obfuscated_code: bool = False
    weak_system_stack: bool = False
    cross_platform_id: str = ""

    def __post_init__(self):
        if self.platform not in ("android", "ios"):
            raise AppModelError(f"unknown platform: {self.platform!r}")

    # -- ground truth --------------------------------------------------------

    def active_specs(self) -> List[PinningSpec]:
        """Specs enforced at runtime."""
        return [s for s in self.pinning_specs if s.active_at_runtime()]

    def static_visible_specs(self) -> List[PinningSpec]:
        """Specs whose material is findable in the package."""
        return [s for s in self.pinning_specs if s.visible_to_static()]

    def runtime_pinned_domains(self) -> Set[str]:
        """Ground truth: domains pinned by an active spec."""
        return {
            d.lower() for spec in self.active_specs() for d in spec.domains
        }

    def pins_at_runtime(self) -> bool:
        return bool(self.runtime_pinned_domains())

    def pins_domain(self, hostname: str) -> bool:
        hostname = hostname.lower()
        for domain in self.runtime_pinned_domains():
            if hostname == domain or hostname.endswith("." + domain):
                return True
        return False

    def embeds_pin_material(self) -> bool:
        """Ground truth for the content scans: does the package contain
        certificate/pin material findable outside configuration files?

        NSC-mechanism specs are excluded — their material lives only in
        the NSC XML, which Table 3 counts under "Configuration Files".
        """
        from repro.appmodel.pinning import PinMechanism

        content_specs = [
            s
            for s in self.static_visible_specs()
            if s.mechanism is not PinMechanism.NSC
        ]
        return bool(content_specs) or bool(self.embedded_material_sources())

    def embedded_material_sources(self) -> List[str]:
        """SDKs that embed certificate material without pinning."""
        from repro.appmodel.sdk import sdk_by_name

        sources = []
        for name in self.sdk_names:
            sdk = sdk_by_name(name)
            if sdk is not None and sdk.embeds_certificates and not sdk.pins:
                sources.append(name)
        return sources

    # -- runtime TLS configuration --------------------------------------------

    def system_suites(self) -> Tuple[CipherSuite, ...]:
        """The app's default ClientHello suite list.

        The iOS 13-era system stack still advertised 3DES; apps that
        configure a modern suite list (``weak_system_stack=False``) avoid
        it on either platform.
        """
        if not self.weak_system_stack:
            return MODERN_SUITES
        return (
            IOS_SYSTEM_SUITES
            if self.platform == "ios"
            else MODERN_SUITES + (WEAK_SUITES[0],)
        )

    def suites_for_destination(self, hostname: str) -> Tuple[CipherSuite, ...]:
        """ClientHello suites for one destination.

        Destinations flagged ``weak_ciphers`` in the behaviour use a stack
        advertising legacy suites; pinned destinations without the flag
        ride a dedicated, modern-only stack — producing Table 8's drop in
        weak ciphers for pinned connections.
        """
        usage = self.behavior.usage_for(hostname)
        if usage is not None and usage.weak_ciphers:
            return MODERN_SUITES + (WEAK_SUITES[0], WEAK_SUITES[2])
        if usage is not None and self.pins_domain(hostname):
            return TLS13_SUITES + TLS12_STRONG_SUITES[:3]
        return self.system_suites()

    def offered_versions(self) -> Tuple[TLSVersion, ...]:
        return (TLSVersion.TLS12, TLSVersion.TLS13)

    def runtime_policy(self, device_store: RootStore) -> CompositePolicy:
        """Assemble the validation policy the app enforces on this device.

        The default is platform root-store validation.  Each active pinning
        spec contributes per-domain overrides; NSC specs are merged into a
        single NSC policy (one config file governs the process).
        """
        library = "conscrypt" if self.platform == "android" else "securetransport"
        base = SystemValidationPolicy(device_store, library=library)
        # The Stone et al. misbehaviour: chain validation runs but the
        # hostname check is skipped (common in hand-rolled TrustManagers).
        lax_base = SystemValidationPolicy(
            device_store, library=library, check_hostname=False
        )
        overrides: Dict[str, ValidationPolicy] = {}
        nsc_rules = []

        for spec in self.active_specs():
            if spec.mechanism is PinMechanism.NSC:

                for domain in spec.domains:
                    resolved = spec.resolved.get(domain)
                    if resolved is None:
                        raise AppModelError(
                            f"spec for {domain!r} was never resolved"
                        )
                    pins = frozenset(resolved.pin_strings)
                    from repro.tls.policy import NSCDomainRule

                    nsc_rules.append(
                        NSCDomainRule(domain=domain, pins=pins)
                    )
                continue

            for domain in spec.domains:
                resolved = spec.resolved.get(domain)
                if resolved is None:
                    raise AppModelError(f"spec for {domain!r} was never resolved")
                # Custom-PKI backends cannot pass system-store validation;
                # their apps check the pin alone (the pinned material *is*
                # the trust anchor).
                if not resolved.default_pki:
                    domain_base = None
                elif spec.skips_hostname_check:
                    domain_base = lax_base
                else:
                    domain_base = base
                if spec.form is PinForm.RAW_CERTIFICATE:
                    overrides[domain] = PinnedCertificatePolicy(
                        resolved.fingerprints,
                        base=domain_base,
                        library=spec.mechanism.library,
                    )
                else:
                    overrides[domain] = SpkiPinPolicy(
                        resolved.pin_strings,
                        base=domain_base,
                        library=spec.mechanism.library,
                    )

        if nsc_rules:
            nsc_policy = NSCPinPolicy(nsc_rules, base=base)
            for rule in nsc_rules:
                overrides[rule.domain] = nsc_policy

        return CompositePolicy(default=base, overrides=overrides)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MobileApp({self.app_id!r}, {self.platform}, {self.category!r}, "
            f"pins={self.pins_at_runtime()})"
        )
