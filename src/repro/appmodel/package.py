"""Shared package-materialisation helpers.

Both platform builders turn the same ground truth (pinning specs, SDK
list) into files; this module holds what they share: the packaging
context, pin-string obfuscation, and CA-bundle synthesis for SDKs that
embed certificates without pinning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.appmodel.pinning import PinningSpec
from repro.util.rng import DeterministicRng


@dataclass
class PackagingContext:
    """Inputs the builders need beyond the app itself.

    Attributes:
        public_root_pems: PEM blobs of public root CAs, used to synthesize
            the CA bundles (``cacert.pem``-alikes) that non-pinning SDKs
            ship — a large share of the static analyzer's embedded-cert
            hits.
        rng: randomness for filler content.
    """

    public_root_pems: List[str] = field(default_factory=list)
    rng: DeterministicRng = field(default_factory=lambda: DeterministicRng(0))


def obfuscate_token(token: str) -> str:
    """Hide a pin string from the static regexes.

    Real apps use string encryption or build pins at run time; the
    simulation stands that in with a reversible transform that breaks both
    the ``sha(1|256)/`` prefix and the base64 alphabet run the regex needs.
    """
    return "enc:" + token[::-1].encode("utf-8").hex()


def deobfuscate_token(blob: str) -> str:
    """Invert :func:`obfuscate_token` (what a dynamic unpacker would do)."""
    if not blob.startswith("enc:"):
        raise ValueError("not an obfuscated token")
    return bytes.fromhex(blob[4:]).decode("utf-8")[::-1]


def pin_declaration_lines(spec: PinningSpec, style: str) -> List[str]:
    """Source-code lines declaring a spec's pins.

    Args:
        spec: a resolved pinning spec (SPKI forms only).
        style: ``"smali"`` (Android decompiled) or ``"objc"``/``"swift"``
            (strings inside an iOS binary).
    """
    lines: List[str] = []
    for domain in spec.domains:
        resolved = spec.resolved.get(domain)
        if resolved is None:
            continue
        for pin in resolved.pin_strings:
            token = obfuscate_token(pin) if spec.obfuscated else pin
            if style == "smali":
                lines.append(f'    const-string v0, "{domain}"')
                lines.append(f'    const-string v1, "{token}"')
            elif style == "objc":
                lines.append(f'kTSKPinnedDomains @"{domain}" @"{token}"')
            else:
                lines.append(f'pinner.add("{domain}", "{token}")')
    return lines


def ca_bundle_pem(ctx: PackagingContext, count: int = 3) -> str:
    """A ``cacert.pem``-style bundle of public roots."""
    if not ctx.public_root_pems:
        return ""
    picked = ctx.rng.sample(ctx.public_root_pems, count)
    return "\n".join(picked)
