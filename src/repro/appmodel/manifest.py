"""AndroidManifest.xml model.

Only the pieces the study touches: the package id and the
``android:networkSecurityConfig`` attribute pointing at an NSC resource.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass
from typing import Optional

from repro.errors import AppModelError

_ANDROID_NS = "http://schemas.android.com/apk/res/android"


@dataclass
class AndroidManifest:
    """The manifest fields static analysis reads."""

    package: str
    version_name: str = "1.0.0"
    network_security_config: Optional[str] = None  # e.g. "@xml/network_security_config"

    def to_xml(self) -> str:
        ET.register_namespace("android", _ANDROID_NS)
        root = ET.Element("manifest")
        root.set("package", self.package)
        root.set(f"{{{_ANDROID_NS}}}versionName", self.version_name)
        application = ET.SubElement(root, "application")
        if self.network_security_config:
            application.set(
                f"{{{_ANDROID_NS}}}networkSecurityConfig",
                self.network_security_config,
            )
        return ET.tostring(root, encoding="unicode")

    @classmethod
    def from_xml(cls, text: str) -> "AndroidManifest":
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise AppModelError(f"malformed AndroidManifest: {exc}") from exc
        if root.tag != "manifest":
            raise AppModelError(f"not a manifest document: root <{root.tag}>")
        package = root.get("package")
        if not package:
            raise AppModelError("manifest is missing the package attribute")
        manifest = cls(
            package=package,
            version_name=root.get(f"{{{_ANDROID_NS}}}versionName", "1.0.0"),
        )
        application = root.find("application")
        if application is not None:
            manifest.network_security_config = application.get(
                f"{{{_ANDROID_NS}}}networkSecurityConfig"
            )
        return manifest

    def nsc_resource_path(self) -> Optional[str]:
        """Resolve ``@xml/foo`` to the decompiled resource path ``res/xml/foo.xml``."""
        if not self.network_security_config:
            return None
        ref = self.network_security_config
        if ref.startswith("@xml/"):
            return f"res/xml/{ref[len('@xml/'):]}.xml"
        return ref
