"""Android Network Security Configuration (NSC) files.

NSC XML is the declarative pinning mechanism prior work (Possemato et al.,
Oltrogge et al.) measured; the paper's static pipeline extracts the config
referenced from the AndroidManifest and parses its ``<pin-set>`` entries
(Section 4.1.1).  This module models the config, serializes it to the real
XML shape, and parses it back.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import AppModelError
from repro.tls.policy import NSCDomainRule
from repro.util.simtime import Timestamp


@dataclass
class NSCPin:
    """One ``<pin digest="SHA-256">base64</pin>`` entry."""

    digest: str  # "SHA-256" or "SHA-1"
    value: str  # base64 SPKI digest

    def as_pin_string(self) -> str:
        """Convert to the ``shaN/<b64>`` form used by validation policies."""
        algorithm = "sha256" if self.digest.upper() == "SHA-256" else "sha1"
        return f"{algorithm}/{self.value}"


@dataclass
class NSCDomainConfig:
    """One ``<domain-config>`` element."""

    domain: str
    include_subdomains: bool = True
    pins: List[NSCPin] = field(default_factory=list)
    pin_set_expiration: Optional[str] = None  # "YYYY-MM-DD"
    override_pins: bool = False
    cleartext_permitted: Optional[bool] = None

    def to_rule(self) -> NSCDomainRule:
        """Convert to the runtime-enforcement rule."""
        expiration: Optional[Timestamp] = None
        if self.pin_set_expiration:
            expiration = _parse_date(self.pin_set_expiration)
        return NSCDomainRule(
            domain=self.domain,
            include_subdomains=self.include_subdomains,
            pins=frozenset(p.as_pin_string() for p in self.pins),
            pin_set_expiration=expiration,
            override_pins=self.override_pins,
        )


@dataclass
class NSCConfig:
    """A whole ``network_security_config.xml``."""

    domain_configs: List[NSCDomainConfig] = field(default_factory=list)
    base_cleartext_permitted: Optional[bool] = None

    def has_pins(self) -> bool:
        """Does any domain-config carry a pin-set?  (What prior work counts.)"""
        return any(dc.pins for dc in self.domain_configs)

    def rules(self) -> List[NSCDomainRule]:
        return [dc.to_rule() for dc in self.domain_configs]

    # -- XML ------------------------------------------------------------------

    def to_xml(self) -> str:
        root = ET.Element("network-security-config")
        if self.base_cleartext_permitted is not None:
            base = ET.SubElement(root, "base-config")
            base.set(
                "cleartextTrafficPermitted",
                "true" if self.base_cleartext_permitted else "false",
            )
        for dc in self.domain_configs:
            elem = ET.SubElement(root, "domain-config")
            if dc.cleartext_permitted is not None:
                elem.set(
                    "cleartextTrafficPermitted",
                    "true" if dc.cleartext_permitted else "false",
                )
            domain = ET.SubElement(elem, "domain")
            domain.set(
                "includeSubdomains", "true" if dc.include_subdomains else "false"
            )
            domain.text = dc.domain
            if dc.pins:
                pin_set = ET.SubElement(elem, "pin-set")
                if dc.pin_set_expiration:
                    pin_set.set("expiration", dc.pin_set_expiration)
                for pin in dc.pins:
                    p = ET.SubElement(pin_set, "pin")
                    p.set("digest", pin.digest)
                    p.text = pin.value
            if dc.override_pins:
                trust = ET.SubElement(elem, "trust-anchors")
                certs = ET.SubElement(trust, "certificates")
                certs.set("src", "user")
                certs.set("overridePins", "true")
        return ET.tostring(root, encoding="unicode")

    @classmethod
    def from_xml(cls, text: str) -> "NSCConfig":
        """Parse a config; raises :class:`AppModelError` on malformed XML."""
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise AppModelError(f"malformed NSC XML: {exc}") from exc
        if root.tag != "network-security-config":
            raise AppModelError(f"not an NSC document: root <{root.tag}>")

        config = cls()
        base = root.find("base-config")
        if base is not None and "cleartextTrafficPermitted" in base.attrib:
            config.base_cleartext_permitted = (
                base.get("cleartextTrafficPermitted") == "true"
            )
        for elem in root.findall("domain-config"):
            domain_elem = elem.find("domain")
            if domain_elem is None or not (domain_elem.text or "").strip():
                continue
            dc = NSCDomainConfig(
                domain=(domain_elem.text or "").strip(),
                include_subdomains=domain_elem.get("includeSubdomains", "false")
                == "true",
            )
            if "cleartextTrafficPermitted" in elem.attrib:
                dc.cleartext_permitted = (
                    elem.get("cleartextTrafficPermitted") == "true"
                )
            pin_set = elem.find("pin-set")
            if pin_set is not None:
                dc.pin_set_expiration = pin_set.get("expiration")
                for p in pin_set.findall("pin"):
                    dc.pins.append(
                        NSCPin(
                            digest=p.get("digest", "SHA-256"),
                            value=(p.text or "").strip(),
                        )
                    )
            trust = elem.find("trust-anchors")
            if trust is not None:
                for certs in trust.findall("certificates"):
                    if certs.get("overridePins") == "true":
                        dc.override_pins = True
            config.domain_configs.append(dc)
        return config


def _parse_date(text: str) -> Timestamp:
    """Parse an NSC expiration date (``YYYY-MM-DD``) to a timestamp."""
    import datetime

    try:
        dt = datetime.datetime.strptime(text, "%Y-%m-%d").replace(
            tzinfo=datetime.timezone.utc
        )
    except ValueError as exc:
        raise AppModelError(f"bad NSC expiration date: {text!r}") from exc
    return Timestamp(int(dt.timestamp()))
