"""In-memory file trees — the unit static analysis operates on.

A :class:`FileTree` stands for the contents of a decompiled APK or a
decrypted IPA payload.  It supports the operations the paper's static
pipeline performs: walking, extension filtering, and ripgrep-style content
search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Pattern, Tuple

from repro.errors import AppModelError


@dataclass
class FileNode:
    """One file.

    Attributes:
        path: package-relative POSIX path.
        content: textual content.  Binary-ish files (native libraries,
            Mach-O executables) are stored as text with embedded printable
            strings — what ``strings``/radare2 would surface anyway.
        binary: True for native-library/executable files; the text scanner
            skips them unless string extraction is enabled.
    """

    path: str
    content: str = ""
    binary: bool = False

    @property
    def name(self) -> str:
        return self.path.rsplit("/", 1)[-1]

    @property
    def extension(self) -> str:
        name = self.name
        if "." not in name:
            return ""
        return "." + name.rsplit(".", 1)[-1].lower()


class FileTree:
    """A mapping of paths to :class:`FileNode` with search helpers."""

    def __init__(self):
        self._files: Dict[str, FileNode] = {}

    def add(self, path: str, content: str = "", binary: bool = False) -> FileNode:
        """Add (or replace) a file.

        Raises:
            AppModelError: for empty or absolute paths.
        """
        if not path or path.startswith("/"):
            raise AppModelError(f"invalid package path: {path!r}")
        node = FileNode(path=path, content=content, binary=binary)
        self._files[path] = node
        return node

    def get(self, path: str) -> Optional[FileNode]:
        return self._files.get(path)

    def __contains__(self, path: str) -> bool:
        return path in self._files

    def __len__(self) -> int:
        return len(self._files)

    def walk(self) -> Iterator[FileNode]:
        """All files in deterministic (sorted-path) order."""
        for path in sorted(self._files):
            yield self._files[path]

    def with_extensions(self, extensions: Tuple[str, ...]) -> List[FileNode]:
        """Files whose extension is in ``extensions`` (lowercase, dotted)."""
        wanted = {e.lower() for e in extensions}
        return [n for n in self.walk() if n.extension in wanted]

    def grep(
        self,
        pattern: Pattern[str],
        *,
        include_binary: bool = False,
    ) -> List[Tuple[FileNode, str]]:
        """ripgrep stand-in: return (file, match) for every regex hit.

        Args:
            pattern: compiled regex.
            include_binary: also scan binary files (the radare2-strings
                pass); off by default like plain ripgrep.
        """
        hits: List[Tuple[FileNode, str]] = []
        for node in self.walk():
            if node.binary and not include_binary:
                continue
            for match in pattern.finditer(node.content):
                hits.append((node, match.group(0)))
        return hits

    def paths(self) -> List[str]:
        return sorted(self._files)
