"""Third-party SDK catalog.

The paper finds pinning "most commonly in third-party libraries (social
networks, payment processing, and app analytics)" and names the top
frameworks embedding certificates in Table 7.  This catalog models those
SDKs — their code paths (the attribution signal of Section 4.1.4), the
destinations they contact, whether and how they pin — plus a tail of
common SDKs that embed certificate material *without* pinning (CA bundles,
licence certificates), which is a major source of the static-over-dynamic
detection gap.

SDK names and domains follow the paper's Table 7 and Section 5 examples
(``config2.mparticle.com``, ``*.perimeterx.net``, ``www.paypalobjects.com``,
``firestore.googleapis.com``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.appmodel.pinning import PinForm, PinMechanism, PinScope, PinningSpec


@dataclass(frozen=True)
class ThirdPartySDK:
    """A third-party library an app may embed.

    Attributes:
        name: vendor/framework name (Table 7's label).
        platforms: platforms the SDK ships on.
        code_path_android / code_path_ios: package path prefix of the SDK's
            code inside a decompiled APK / decrypted IPA.
        domains: destinations the SDK contacts at startup.
        pins: whether the SDK pins its destinations.
        mechanism / scope / form: pinning implementation when ``pins``.
        embeds_certificates: ships certificate material in its code path
            even if it does not pin (CA bundles etc.).
        prevalence: per-platform inclusion probability in a *popular* app;
            the corpus generator scales this by dataset.
        category_affinity: app categories in which the SDK is more likely.
        dormant_platforms: platforms where typical integrations never
            trigger the SDK's network code at cold start — the paper's
            PayPal-on-Android case (pins ship in 25 packages, Table 7, yet
            PayPal domains never appear pinned dynamically except in the
            PayPal app itself).
    """

    name: str
    platforms: Tuple[str, ...]
    code_path_android: str = ""
    code_path_ios: str = ""
    domains: Tuple[str, ...] = ()
    pins: bool = False
    mechanism: PinMechanism = PinMechanism.CUSTOM_TLS
    scope: PinScope = PinScope.ROOT
    form: PinForm = PinForm.SPKI_SHA256
    embeds_certificates: bool = False
    prevalence: Dict[str, float] = field(default_factory=dict)
    category_affinity: Tuple[str, ...] = ()
    dormant_platforms: Tuple[str, ...] = ()
    obfuscated_pins: bool = False

    def dormant_on(self, platform: str) -> bool:
        return platform in self.dormant_platforms

    def code_path(self, platform: str) -> str:
        return self.code_path_android if platform == "android" else self.code_path_ios

    def available_on(self, platform: str) -> bool:
        return platform in self.platforms

    def make_pinning_spec(self, platform: str) -> Optional[PinningSpec]:
        """Build this SDK's pinning spec for a platform, if it pins there."""
        if not self.pins or not self.available_on(platform):
            return None
        mechanism = self.mechanism
        if mechanism.platform is not None and mechanism.platform != platform:
            # Cross-platform SDKs reimplement pinning with the native
            # mechanism of each platform.
            mechanism = (
                PinMechanism.OKHTTP if platform == "android" else PinMechanism.TRUSTKIT
            )
        return PinningSpec(
            domains=self.domains,
            mechanism=mechanism,
            scope=self.scope,
            form=self.form,
            source=self.name,
            code_path=self.code_path(platform),
            obfuscated=self.obfuscated_pins,
        )


def _sdk(**kwargs) -> ThirdPartySDK:
    return ThirdPartySDK(**kwargs)


#: The catalog. Prevalence values are calibrated so that per-framework app
#: counts across the full corpus land near Table 7's, and so third-party
#: pinned destinations outnumber first-party ones (Section 5.2).
SDK_CATALOG: Tuple[ThirdPartySDK, ...] = (
    # -- pinning SDKs: Table 7 Android ------------------------------------
    _sdk(
        name="Twitter",
        platforms=("android", "ios"),
        code_path_android="com/twitter/sdk",
        code_path_ios="Frameworks/TwitterKit.framework",
        domains=("api.twitter.com", "syndication.twitter.com"),
        pins=True,
        mechanism=PinMechanism.OKHTTP,
        scope=PinScope.ROOT,
        form=PinForm.SPKI_SHA256,
        embeds_certificates=True,
        prevalence={"android": 0.028, "ios": 0.012},
        category_affinity=("Social", "News", "Entertainment"),
    ),
    _sdk(
        name="Braintree",
        platforms=("android",),
        code_path_android="com/braintreepayments/api",
        domains=("api.braintreegateway.com",),
        pins=True,
        mechanism=PinMechanism.OKHTTP,
        scope=PinScope.ROOT,
        form=PinForm.RAW_CERTIFICATE,
        embeds_certificates=True,
        prevalence={"android": 0.026},
        category_affinity=("Shopping", "Finance", "Food & Drink", "Travel"),
    ),
    _sdk(
        name="Paypal",
        platforms=("android", "ios"),
        code_path_android="com/paypal/android/sdk",
        code_path_ios="Frameworks/PayPalDataCollector.framework",
        domains=("api.paypal.com", "www.paypalobjects.com"),
        pins=True,
        mechanism=PinMechanism.CUSTOM_TLS,
        scope=PinScope.ROOT,
        form=PinForm.RAW_CERTIFICATE,
        embeds_certificates=True,
        prevalence={"android": 0.024, "ios": 0.022},
        category_affinity=("Shopping", "Finance", "Travel", "Food & Drink"),
        dormant_platforms=("android",),
    ),
    _sdk(
        name="Perimeterx",
        platforms=("android", "ios"),
        code_path_android="com/perimeterx/msdk",
        code_path_ios="Frameworks/PerimeterX.framework",
        domains=("collector.perimeterx.net",),
        pins=True,
        mechanism=PinMechanism.OKHTTP,
        scope=PinScope.INTERMEDIATE,
        form=PinForm.SPKI_SHA256,
        embeds_certificates=True,
        prevalence={"android": 0.009, "ios": 0.005},
        category_affinity=("Shopping", "Travel", "Lifestyle"),
    ),
    _sdk(
        name="MParticle",
        platforms=("android", "ios"),
        code_path_android="com/mparticle",
        code_path_ios="Frameworks/mParticle.framework",
        domains=("config2.mparticle.com", "nativesdks.mparticle.com"),
        pins=True,
        mechanism=PinMechanism.OKHTTP,
        scope=PinScope.ROOT,
        form=PinForm.SPKI_SHA256,
        embeds_certificates=True,
        prevalence={"android": 0.009, "ios": 0.007},
        category_affinity=("Shopping", "Lifestyle", "Food & Drink"),
    ),
    # -- pinning SDKs: Table 7 iOS -----------------------------------------
    _sdk(
        name="Amplitude",
        platforms=("ios", "android"),
        code_path_ios="Frameworks/Amplitude.framework",
        code_path_android="com/amplitude/api",
        domains=("api.amplitude.com",),
        pins=True,
        mechanism=PinMechanism.URLSESSION,
        scope=PinScope.ROOT,
        form=PinForm.SPKI_SHA256,
        embeds_certificates=True,
        prevalence={"ios": 0.042, "android": 0.004},
        category_affinity=("Social", "Lifestyle", "Photo & Video", "Productivity"),
    ),
    _sdk(
        name="Stripe",
        platforms=("ios", "android"),
        code_path_ios="Frameworks/Stripe.framework",
        code_path_android="com/stripe/android",
        domains=("api.stripe.com",),
        pins=True,
        mechanism=PinMechanism.URLSESSION,
        scope=PinScope.ROOT,
        form=PinForm.SPKI_SHA256,
        embeds_certificates=True,
        prevalence={"ios": 0.032, "android": 0.004},
        category_affinity=("Shopping", "Finance", "Food & Drink", "Travel"),
    ),
    _sdk(
        name="Weibo",
        platforms=("ios",),
        code_path_ios="Frameworks/WeiboSDK.framework",
        domains=("api.weibo.com",),
        pins=True,
        mechanism=PinMechanism.CUSTOM_TLS,
        scope=PinScope.LEAF,
        form=PinForm.SPKI_SHA256,
        embeds_certificates=True,
        prevalence={"ios": 0.022},
        category_affinity=("Social", "Photo & Video", "Entertainment"),
    ),
    _sdk(
        name="FraudForce",
        platforms=("ios", "android"),
        code_path_ios="Frameworks/FraudForce.framework",
        code_path_android="com/iovation/mobile/android",
        domains=("mpsnare.iesnare.com",),
        pins=True,
        mechanism=PinMechanism.CUSTOM_TLS,
        scope=PinScope.ROOT,
        form=PinForm.RAW_CERTIFICATE,
        embeds_certificates=True,
        prevalence={"ios": 0.015, "android": 0.008},
        category_affinity=("Finance", "Shopping"),
    ),
    # App-protection/anti-tamper SDKs ship their own TLS stacks — the
    # unhookable tail behind the paper's ~50 % Android circumvention rate.
    _sdk(
        name="AppShield",
        platforms=("android",),
        code_path_android="com/appshield/sdk",
        domains=("telemetry.appshield.io",),
        pins=True,
        mechanism=PinMechanism.CUSTOM_TLS,
        scope=PinScope.LEAF,
        form=PinForm.RAW_CERTIFICATE,
        embeds_certificates=True,
        prevalence={"android": 0.012},
        category_affinity=("Finance", "Business", "Health"),
    ),
    _sdk(
        name="Adobe Creative Cloud",
        platforms=("ios",),
        code_path_ios="Frameworks/AdobeCreativeSDK.framework",
        domains=("cc-api-storage.adobe.io",),
        pins=True,
        mechanism=PinMechanism.AFNETWORKING,
        scope=PinScope.ROOT,
        form=PinForm.SPKI_SHA256,
        embeds_certificates=True,
        prevalence={"ios": 0.012},
        category_affinity=("Photo & Video", "Productivity"),
    ),
    # -- pinning SDKs pervasive in random iOS apps (Section 5, "Pinning by
    #    Platform": paypalobjects and firestore pins in the Random set) ----
    _sdk(
        name="Firestore",
        platforms=("ios", "android"),
        code_path_ios="Frameworks/FirebaseFirestore.framework",
        code_path_android="com/google/firebase/firestore",
        domains=("firestore.googleapis.com",),
        pins=True,
        mechanism=PinMechanism.URLSESSION,
        scope=PinScope.ROOT,
        form=PinForm.SPKI_SHA256,
        embeds_certificates=False,
        prevalence={"ios": 0.016, "android": 0.0},
        category_affinity=(),
        obfuscated_pins=True,  # pins are built at run time; static misses them
    ),
    # -- non-pinning SDKs that still embed certificate material ------------
    _sdk(
        name="Sensibill",
        platforms=("android",),
        code_path_android="com/getsensibill/sensibill",
        domains=("api.getsensibill.com",),
        pins=False,
        embeds_certificates=True,
        prevalence={"android": 0.004},
        category_affinity=("Finance",),
    ),
    _sdk(
        name="AWS SDK",
        platforms=("android", "ios"),
        code_path_android="com/amazonaws",
        code_path_ios="Frameworks/AWSCore.framework",
        domains=("cognito-identity.us-east-1.amazonaws.com",),
        pins=False,
        embeds_certificates=True,  # ships an IoT root-CA bundle
        prevalence={"android": 0.09, "ios": 0.07},
        category_affinity=(),
    ),
    _sdk(
        name="Conviva",
        platforms=("android", "ios"),
        code_path_android="com/conviva/api",
        code_path_ios="Frameworks/ConvivaSDK.framework",
        domains=("cws.conviva.com",),
        pins=False,
        embeds_certificates=True,
        prevalence={"android": 0.02, "ios": 0.02},
        category_affinity=("Entertainment", "Photo & Video"),
    ),
    _sdk(
        name="OpenTok",
        platforms=("android", "ios"),
        code_path_android="com/opentok/android",
        code_path_ios="Frameworks/OpenTok.framework",
        domains=("anvil.opentok.com",),
        pins=False,
        embeds_certificates=True,
        prevalence={"android": 0.015, "ios": 0.015},
        category_affinity=("Social", "Health", "Medical"),
    ),
    _sdk(
        name="Cordova SSL Pinning Plugin",
        platforms=("android", "ios"),
        code_path_android="nl/xservices/plugins",
        code_path_ios="Frameworks/CordovaHttp.framework",
        domains=(),
        pins=False,  # ships pinning *capability*; most apps never enable it
        embeds_certificates=True,
        prevalence={"android": 0.03, "ios": 0.02},
        category_affinity=("Business", "Productivity", "Utilities"),
    ),
    # -- ubiquitous non-pinning SDKs (traffic volume, PII senders) ---------
    _sdk(
        name="Firebase",
        platforms=("android", "ios"),
        code_path_android="com/google/firebase",
        code_path_ios="Frameworks/FirebaseCore.framework",
        domains=(
            "firebaseinstallations.googleapis.com",
            "firebaseremoteconfig.googleapis.com",
        ),
        pins=False,
        prevalence={"android": 0.62, "ios": 0.45},
        category_affinity=(),
    ),
    _sdk(
        name="AdMob",
        platforms=("android", "ios"),
        code_path_android="com/google/android/gms/ads",
        code_path_ios="Frameworks/GoogleMobileAds.framework",
        domains=("googleads.g.doubleclick.net", "pagead2.googlesyndication.com"),
        pins=False,
        prevalence={"android": 0.45, "ios": 0.30},
        category_affinity=("Games", "Entertainment", "Tools", "Utilities"),
    ),
    _sdk(
        name="Facebook",
        platforms=("android", "ios"),
        code_path_android="com/facebook/sdk",
        code_path_ios="Frameworks/FBSDKCoreKit.framework",
        domains=("graph.facebook.com",),
        pins=False,
        prevalence={"android": 0.35, "ios": 0.32},
        category_affinity=(),
    ),
    _sdk(
        name="Crashlytics",
        platforms=("android", "ios"),
        code_path_android="com/crashlytics/android",
        code_path_ios="Frameworks/Crashlytics.framework",
        domains=("settings.crashlytics.com", "reports.crashlytics.com"),
        pins=False,
        prevalence={"android": 0.40, "ios": 0.35},
        category_affinity=(),
    ),
    _sdk(
        name="AppsFlyer",
        platforms=("android", "ios"),
        code_path_android="com/appsflyer",
        code_path_ios="Frameworks/AppsFlyerLib.framework",
        domains=("t.appsflyer.com", "events.appsflyer.com"),
        pins=False,
        prevalence={"android": 0.18, "ios": 0.20},
        category_affinity=("Games", "Shopping", "Lifestyle"),
    ),
    _sdk(
        name="Adjust",
        platforms=("android", "ios"),
        code_path_android="com/adjust/sdk",
        code_path_ios="Frameworks/Adjust.framework",
        domains=("app.adjust.com",),
        pins=False,
        prevalence={"android": 0.12, "ios": 0.14},
        category_affinity=(),
    ),
    _sdk(
        name="Unity Ads",
        platforms=("android", "ios"),
        code_path_android="com/unity3d/ads",
        code_path_ios="Frameworks/UnityAds.framework",
        domains=("publisher-config.unityads.unity3d.com",),
        pins=False,
        prevalence={"android": 0.20, "ios": 0.15},
        category_affinity=("Games",),
    ),
)


def sdk_by_name(name: str) -> Optional[ThirdPartySDK]:
    """Look up a catalog SDK by name."""
    for sdk in SDK_CATALOG:
        if sdk.name == name:
            return sdk
    return None


def sdks_for_platform(platform: str) -> List[ThirdPartySDK]:
    return [s for s in SDK_CATALOG if s.available_on(platform)]
