"""iOS property lists: Info.plist, ATS settings, entitlements.

Real plist XML via :mod:`plistlib` so decrypted IPA payloads look
authentic to the static scanner.  App Transport Security's
``NSPinnedDomains`` (iOS 14+) is modelled because apps ship it, but —
exactly as in the paper (Section 4.1.1) — the study's iOS 13.6 device does
not enforce it and the static pipeline does not check for it.
"""

from __future__ import annotations

import plistlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple
from xml.parsers.expat import ExpatError

from repro.errors import AppModelError

#: What :func:`plistlib.loads` raises on malformed input — and nothing
#: broader.  ``InvalidFileException`` subclasses ``ValueError``, which
#: also covers binary-plist struct errors; ``ExpatError`` covers broken
#: XML.  A ``TypeError``/``AttributeError`` from a caller bug must
#: propagate, not be swallowed as "malformed plist".
_PLIST_PARSE_ERRORS = (ExpatError, ValueError)


@dataclass
class ATSPinnedDomain:
    """One entry of ``NSPinnedDomains`` (iOS 14+)."""

    domain: str
    include_subdomains: bool = True
    spki_sha256_base64: Tuple[str, ...] = ()


@dataclass
class InfoPlist:
    """The Info.plist fields the study touches."""

    bundle_id: str
    bundle_name: str
    version: str = "1.0.0"
    ats_allows_arbitrary_loads: bool = False
    ats_pinned_domains: List[ATSPinnedDomain] = field(default_factory=list)

    def to_plist_xml(self) -> str:
        ats: Dict[str, object] = {
            "NSAllowsArbitraryLoads": self.ats_allows_arbitrary_loads
        }
        if self.ats_pinned_domains:
            pinned: Dict[str, object] = {}
            for entry in self.ats_pinned_domains:
                pinned[entry.domain] = {
                    "NSIncludesSubdomains": entry.include_subdomains,
                    "NSPinnedLeafIdentities": [
                        {"SPKI-SHA256-BASE64": v}
                        for v in entry.spki_sha256_base64
                    ],
                }
            ats["NSPinnedDomains"] = pinned
        payload = {
            "CFBundleIdentifier": self.bundle_id,
            "CFBundleName": self.bundle_name,
            "CFBundleShortVersionString": self.version,
            "NSAppTransportSecurity": ats,
        }
        return plistlib.dumps(payload).decode("utf-8")

    @classmethod
    def from_plist_xml(cls, text: str) -> "InfoPlist":
        try:
            payload = plistlib.loads(text.encode("utf-8"))
        except _PLIST_PARSE_ERRORS as exc:
            raise AppModelError(f"malformed Info.plist: {exc}") from exc
        if not isinstance(payload, dict):
            raise AppModelError(
                f"malformed Info.plist: top level is "
                f"{type(payload).__name__}, expected dict"
            )
        try:
            info = cls(
                bundle_id=payload["CFBundleIdentifier"],
                bundle_name=payload.get("CFBundleName", ""),
                version=payload.get("CFBundleShortVersionString", "1.0.0"),
            )
        except KeyError as exc:
            raise AppModelError(f"Info.plist missing {exc}") from exc
        ats = payload.get("NSAppTransportSecurity", {})
        info.ats_allows_arbitrary_loads = bool(
            ats.get("NSAllowsArbitraryLoads", False)
        )
        for domain, spec in ats.get("NSPinnedDomains", {}).items():
            identities = spec.get("NSPinnedLeafIdentities", [])
            info.ats_pinned_domains.append(
                ATSPinnedDomain(
                    domain=domain,
                    include_subdomains=bool(
                        spec.get("NSIncludesSubdomains", True)
                    ),
                    spki_sha256_base64=tuple(
                        i["SPKI-SHA256-BASE64"]
                        for i in identities
                        if "SPKI-SHA256-BASE64" in i
                    ),
                )
            )
        return info


@dataclass
class Entitlements:
    """The app entitlements; associated domains drive the iOS
    background-traffic confounder (Section 4.5)."""

    bundle_id: str
    associated_domains: Tuple[str, ...] = ()

    def to_plist_xml(self) -> str:
        payload = {
            "application-identifier": f"TEAMID.{self.bundle_id}",
            "com.apple.developer.associated-domains": [
                f"applinks:{d}" for d in self.associated_domains
            ],
        }
        return plistlib.dumps(payload).decode("utf-8")

    @classmethod
    def from_plist_xml(cls, text: str) -> "Entitlements":
        try:
            payload = plistlib.loads(text.encode("utf-8"))
        except _PLIST_PARSE_ERRORS as exc:
            raise AppModelError(f"malformed entitlements: {exc}") from exc
        if not isinstance(payload, dict):
            raise AppModelError(
                f"malformed entitlements: top level is "
                f"{type(payload).__name__}, expected dict"
            )
        identifier = payload.get("application-identifier", "TEAMID.unknown")
        bundle_id = identifier.split(".", 1)[1] if "." in identifier else identifier
        domains = tuple(
            entry.split(":", 1)[1]
            for entry in payload.get("com.apple.developer.associated-domains", [])
            if entry.startswith("applinks:")
        )
        return cls(bundle_id=bundle_id, associated_domains=domains)
