"""Pinning specifications — the corpus ground truth.

A :class:`PinningSpec` states that some code unit (the app itself or a
third-party SDK) pins a set of domains, by what mechanism, against which
certificate in the chain, and in what form.  Specs are *resolved* against
the live endpoint registry (turning "pin the root of api.foo.com's chain"
into concrete pin strings / PEM blobs), then drive both package
materialisation (what static analysis can find) and runtime policy
construction (what dynamic analysis observes).

Two flags decouple the static and dynamic views, reproducing the paper's
"potential vs actual pinning" gap (Section 4.2):

* ``dormant`` — the pin material ships in the package but the code path
  never runs (unused library, feature-flagged off).  Static finds it,
  dynamic does not.
* ``obfuscated`` — the pin material is encoded/obfuscated in the package.
  Dynamic observes the pinning, static misses it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import AppModelError
from repro.pki.certificate import Certificate
from repro.pki.chain import CertificateChain


class PinMechanism(enum.Enum):
    """How the pin is implemented; decides package artefacts, the runtime
    policy, and Frida hookability."""

    NSC = "nsc"  # Android Network Security Configuration
    OKHTTP = "okhttp"  # OkHttp CertificatePinner (Android)
    TRUSTKIT = "trustkit"  # TrustKit (iOS, also Android port)
    ALAMOFIRE = "alamofire"  # Alamofire ServerTrustManager (iOS)
    AFNETWORKING = "afnetworking"  # AFSecurityPolicy (iOS)
    URLSESSION = "urlsession"  # NSURLSession delegate checks (iOS)
    CONSCRYPT = "conscrypt"  # TrustManager override (Android)
    CUSTOM_TLS = "custom_tls"  # bespoke TLS stack; unhookable

    @property
    def library(self) -> str:
        """The TLS-library label used by the Frida hook catalog."""
        return self.value

    @property
    def platform(self) -> Optional[str]:
        """Platform restriction, or None for cross-platform mechanisms."""
        if self in (PinMechanism.NSC, PinMechanism.OKHTTP, PinMechanism.CONSCRYPT):
            return "android"
        if self in (
            PinMechanism.ALAMOFIRE,
            PinMechanism.AFNETWORKING,
            PinMechanism.URLSESSION,
        ):
            return "ios"
        return None


class PinScope(enum.Enum):
    """Which certificate in the chain is pinned (Section 5.3.2)."""

    LEAF = "leaf"
    INTERMEDIATE = "intermediate"
    ROOT = "root"

    @property
    def is_ca(self) -> bool:
        return self is not PinScope.LEAF


class PinForm(enum.Enum):
    """What exactly is embedded (Section 5.3.3)."""

    SPKI_SHA256 = "spki_sha256"
    SPKI_SHA1 = "spki_sha1"
    RAW_CERTIFICATE = "raw_certificate"


@dataclass(frozen=True)
class ResolvedPin:
    """Concrete pin material for one domain.

    Attributes:
        domain: the pinned destination.
        pinned_cert_cn: CN of the chain certificate the pin targets.
        pinned_cert_is_ca: whether that certificate is a CA.
        pin_strings: ``shaN/<b64>`` strings (SPKI forms).
        pem: PEM blob (raw-certificate form).
        fingerprints: SHA-256 certificate fingerprints (raw form's runtime
            check).
        default_pki: the pinned chain anchors in the public PKI.  When
            False (custom root, self-signed server) the app's runtime
            check is pin-only — system-store validation would reject its
            own backend ("Pinning for Customization", Section 2.1).
    """

    domain: str
    pinned_cert_cn: str
    pinned_cert_is_ca: bool
    pin_strings: Tuple[str, ...] = ()
    pem: str = ""
    fingerprints: Tuple[str, ...] = ()
    default_pki: bool = True


@dataclass
class PinningSpec:
    """One pinning decision by one code unit."""

    domains: Tuple[str, ...]
    mechanism: PinMechanism
    scope: PinScope = PinScope.ROOT
    form: PinForm = PinForm.SPKI_SHA256
    source: str = "first-party"  # "first-party" or an SDK name
    code_path: str = ""  # package path prefix holding the material
    dormant: bool = False
    obfuscated: bool = False
    # The Stone et al. (ACSAC'17 "Spinner") misbehaviour: the pin check
    # runs but standard hostname verification does not, so any
    # certificate from the pinned CA — including one issued to an
    # attacker's domain — is accepted.
    skips_hostname_check: bool = False
    # The Possemato et al. NSC misconfiguration: a pin-set neutralised by
    # a ``<certificates overridePins="true">`` trust-anchor entry.
    nsc_override_pins: bool = False
    resolved: Dict[str, ResolvedPin] = field(default_factory=dict)

    def __post_init__(self):
        if not self.domains:
            raise AppModelError("a PinningSpec needs at least one domain")
        if self.form is PinForm.RAW_CERTIFICATE and self.mechanism is PinMechanism.NSC:
            # NSC pin-sets carry digests, not raw certificates.
            self.form = PinForm.SPKI_SHA256

    @property
    def is_third_party(self) -> bool:
        return self.source != "first-party"

    def pick_certificate(self, chain: CertificateChain) -> Certificate:
        """The chain certificate this spec's scope points at.

        Falls back gracefully for short chains (a self-signed single-cert
        chain has only one choice).
        """
        if self.scope is PinScope.LEAF or len(chain) == 1:
            return chain.leaf
        if self.scope is PinScope.INTERMEDIATE and len(chain) >= 2:
            return chain.certificates[1]
        return chain.terminal

    def resolve_domain(
        self, domain: str, chain: CertificateChain, default_pki: bool = True
    ) -> ResolvedPin:
        """Compute concrete pin material for a domain from its live chain.

        Args:
            domain: the destination to pin.
            chain: the chain the destination currently serves.
            default_pki: whether that chain anchors in the public PKI —
                False switches the runtime check to pin-only.
        """
        cert = self.pick_certificate(chain)
        if self.form is PinForm.RAW_CERTIFICATE:
            resolved = ResolvedPin(
                domain=domain,
                pinned_cert_cn=cert.common_name,
                pinned_cert_is_ca=cert.is_ca,
                pem=cert.to_pem(),
                fingerprints=(cert.fingerprint_sha256(),),
                pin_strings=(cert.spki_pin(),),
                default_pki=default_pki,
            )
        else:
            algorithm = "sha1" if self.form is PinForm.SPKI_SHA1 else "sha256"
            resolved = ResolvedPin(
                domain=domain,
                pinned_cert_cn=cert.common_name,
                pinned_cert_is_ca=cert.is_ca,
                pin_strings=(cert.spki_pin(algorithm=algorithm),),
                default_pki=default_pki,
            )
        self.resolved[domain] = resolved
        return resolved

    def is_resolved(self) -> bool:
        return set(self.resolved) == set(self.domains)

    def active_at_runtime(self) -> bool:
        return not self.dormant and not self.nsc_override_pins

    def visible_to_static(self) -> bool:
        return not self.obfuscated
