"""Android app packages (the decompiled-APK view).

:class:`AndroidApp` pairs a :class:`~repro.appmodel.app.MobileApp` with its
package materialisation: an AndroidManifest, an optional NSC file, smali
code trees per SDK, embedded certificates, and native libraries whose
strings only a radare2-style pass surfaces.

Apktool in the real pipeline produces exactly this file tree from an APK;
the simulation skips the binary round-trip and exposes the decompiled form
directly (see :mod:`repro.core.static.decompile`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.appmodel.app import MobileApp
from repro.appmodel.filetree import FileTree
from repro.appmodel.manifest import AndroidManifest
from repro.appmodel.nsc import NSCConfig, NSCDomainConfig, NSCPin
from repro.appmodel.package import (
    PackagingContext,
    ca_bundle_pem,
    pin_declaration_lines,
)
from repro.appmodel.pinning import PinForm, PinMechanism
from repro.appmodel.sdk import sdk_by_name
from repro.errors import AppModelError
from repro.util.encoding import b64encode

_SMALI_HEADER = """.class public L{path};
.super Ljava/lang/Object;

.method public constructor <init>()V
    .locals 2
"""
_SMALI_FOOTER = """    return-void
.end method
"""


@dataclass
class AndroidApp:
    """A packaged Android app."""

    app: MobileApp
    package: FileTree = field(default_factory=FileTree)

    @property
    def app_id(self) -> str:
        return self.app.app_id


def _nsc_config_for(app: MobileApp) -> Optional[NSCConfig]:
    """Build the app's NSC file, if it ships one.

    NSC specs contribute pin-sets; an app flagged ``uses_nsc`` without NSC
    pin specs gets a pin-less config (the common real-world case prior
    work measured: most NSC users configure cleartext, not pins).
    """
    nsc_specs = [
        s for s in app.pinning_specs if s.mechanism is PinMechanism.NSC
    ]
    if not nsc_specs and not app.uses_nsc:
        return None
    config = NSCConfig(base_cleartext_permitted=False)
    for spec in nsc_specs:
        for domain in spec.domains:
            resolved = spec.resolved.get(domain)
            if resolved is None:
                raise AppModelError(f"NSC spec for {domain!r} unresolved")
            config.domain_configs.append(
                NSCDomainConfig(
                    domain=domain,
                    pins=[
                        NSCPin(digest="SHA-256", value=p.split("/", 1)[1])
                        for p in resolved.pin_strings
                    ],
                    pin_set_expiration="2023-01-01",
                    override_pins=spec.nsc_override_pins,
                )
            )
    if not config.domain_configs:
        config.domain_configs.append(
            NSCDomainConfig(domain="legacy.example.com", cleartext_permitted=True)
        )
    return config


def _smali_path(code_path: str, class_name: str) -> str:
    return f"smali/{code_path}/{class_name}.smali"


def _emit_code_files(app: MobileApp, tree: FileTree, ctx: PackagingContext) -> None:
    """Smali trees for the app's own code and each SDK."""
    rng = ctx.rng.child("code", app.app_id)
    own_path = app.app_id.replace(".", "/")
    tree.add(
        _smali_path(own_path, "MainActivity"),
        _SMALI_HEADER.format(path=f"{own_path}/MainActivity")
        + '    const-string v0, "app_start"\n'
        + _SMALI_FOOTER,
    )

    for sdk_name in app.sdk_names:
        sdk = sdk_by_name(sdk_name)
        if sdk is None or not sdk.available_on("android"):
            continue
        path = sdk.code_path_android or f"sdk/{sdk_name.lower().replace(' ', '')}"
        body = [
            _SMALI_HEADER.format(path=f"{path}/NetworkClient"),
            f'    const-string v0, "{sdk.domains[0] if sdk.domains else "config"}"',
        ]
        tree.add(_smali_path(path, "NetworkClient"), "\n".join(body) + "\n" + _SMALI_FOOTER)
        if sdk.embeds_certificates and not sdk.pins:
            bundle = ca_bundle_pem(ctx, count=rng.randint(2, 4))
            if bundle:
                tree.add(f"{path}/res/cacert.pem".replace("smali/", ""), bundle)


def _emit_pin_material(app: MobileApp, tree: FileTree) -> None:
    """Embed each static-visible spec's pin material at its code path."""
    for index, spec in enumerate(app.pinning_specs):
        if spec.mechanism is PinMechanism.NSC:
            continue  # lives in the NSC file
        if not spec.visible_to_static() and spec.mechanism is not PinMechanism.CUSTOM_TLS:
            # Obfuscated material still ships, but encoded.
            pass
        code_path = spec.code_path or app.app_id.replace(".", "/")
        # SDK material ships inside the SDK's own directory (the paper's
        # attribution signal); first-party material under assets/.
        cert_dir = f"{code_path}/certs" if spec.code_path else "assets/certs"
        if spec.form is PinForm.RAW_CERTIFICATE:
            for domain in spec.domains:
                resolved = spec.resolved.get(domain)
                if resolved is None:
                    raise AppModelError(f"spec for {domain!r} unresolved")
                safe = domain.replace(".", "_")
                if spec.obfuscated:
                    # Certificate reconstructed at run time; only an
                    # unrecognisable blob ships.
                    tree.add(
                        f"{cert_dir}/{safe}.bin",
                        b64encode(resolved.pem.encode())[::-1],
                    )
                else:
                    tree.add(f"{cert_dir}/{safe}.pem", resolved.pem)
                    tree.add(
                        _smali_path(code_path, f"PinManager{index}"),
                        _SMALI_HEADER.format(path=f"{code_path}/PinManager{index}")
                        + f'    const-string v0, "{cert_dir}/{safe}.pem"\n'
                        + _SMALI_FOOTER,
                    )
        else:
            lines = pin_declaration_lines(spec, style="smali")
            if spec.mechanism is PinMechanism.CUSTOM_TLS:
                # Custom stacks keep pins in native code: only the
                # radare2-strings pass can see them.
                tree.add(
                    f"lib/arm64-v8a/libpinning{index}.so",
                    "\n".join(
                        line.split(", ", 1)[-1].strip('"') for line in lines
                    ),
                    binary=True,
                )
            else:
                tree.add(
                    _smali_path(code_path, f"CertificatePinner{index}"),
                    _SMALI_HEADER.format(path=f"{code_path}/CertificatePinner{index}")
                    + "\n".join(lines)
                    + "\n"
                    + _SMALI_FOOTER,
                )


def build_android_package(app: MobileApp, ctx: PackagingContext) -> AndroidApp:
    """Materialise the decompiled-APK file tree for an app.

    Raises:
        AppModelError: if the app is not an Android app or a spec is
            unresolved.
    """
    if app.platform != "android":
        raise AppModelError(f"{app.app_id!r} is not an Android app")

    tree = FileTree()
    nsc = _nsc_config_for(app)
    manifest = AndroidManifest(
        package=app.app_id,
        network_security_config="@xml/network_security_config" if nsc else None,
    )
    tree.add("AndroidManifest.xml", manifest.to_xml())
    if nsc is not None:
        tree.add("res/xml/network_security_config.xml", nsc.to_xml())

    _emit_code_files(app, tree, ctx)
    _emit_pin_material(app, tree)

    # Generic filler every app ships (the attribution step must ignore it).
    tree.add("assets/config.json", '{"build": "release", "flavor": "store"}')
    tree.add("resources.arsc", "binary-resource-table", binary=True)
    return AndroidApp(app=app, package=tree)
