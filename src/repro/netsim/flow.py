"""Flow records — the capture unit everything downstream consumes.

A :class:`FlowRecord` is one TCP/TLS connection as the capture box saw it:
SNI, offered and negotiated TLS parameters, the record trace, the TCP
teardown, and — only when the proxy terminated TLS — decrypted payloads.

Ground-truth fields (``gt_*``) record what *actually* happened so tests can
score detector precision/recall; analysis code never reads them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import AnalysisError
from repro.tls.ciphers import CipherSuite
from repro.tls.connection import ConnectionTrace
from repro.tls.records import TLSVersion
from repro.util.simtime import Timestamp


@dataclass(frozen=True)
class Payload:
    """One application-layer message (HTTP-ish) inside a connection.

    Attributes:
        method: HTTP method.
        path: request path.
        fields: flattened key→value body/query fields.  PII hides in here.
        headers: request headers.
    """

    method: str = "POST"
    path: str = "/"
    fields: Tuple[Tuple[str, str], ...] = ()
    headers: Tuple[Tuple[str, str], ...] = ()

    def flattened(self) -> str:
        """Single-string rendering the PII scanner greps."""
        parts = [self.method, self.path]
        parts.extend(f"{k}={v}" for k, v in self.fields)
        parts.extend(f"{k}: {v}" for k, v in self.headers)
        return "\n".join(parts)


@dataclass
class FlowRecord:
    """One captured connection."""

    sni: str
    started_at: Timestamp
    app_id: str = ""
    platform: str = ""
    mitm_attempted: bool = False
    version: Optional[TLSVersion] = None
    cipher: Optional[CipherSuite] = None
    offered_suites: Tuple[CipherSuite, ...] = ()
    trace: ConnectionTrace = field(default_factory=ConnectionTrace)
    handshake_completed: bool = False
    plaintext_visible: bool = False
    client_fingerprint: str = ""
    os_initiated: bool = False
    _payloads: Tuple[Payload, ...] = ()
    # Ground truth (tests only):
    gt_pinned: bool = False
    gt_failure_reason: str = ""

    def decrypted_payloads(self) -> Tuple[Payload, ...]:
        """Payloads, available only when the proxy terminated TLS.

        Raises:
            AnalysisError: if called on a flow the proxy could not decrypt —
                guarding against analysis code accidentally peeking at
                ground truth.
        """
        if not self.plaintext_visible:
            raise AnalysisError(
                f"flow to {self.sni!r} was not decrypted; payloads unavailable"
            )
        return self._payloads

    def advertised_weak_cipher(self) -> bool:
        """Table 8's per-connection test on the ClientHello."""
        from repro.tls.ciphers import is_weak_suite

        return any(is_weak_suite(s) for s in self.offered_suites)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "mitm" if self.mitm_attempted else "direct"
        return f"FlowRecord({self.sni!r}, {state}, teardown={self.trace.teardown})"
