"""Network simulation: flow capture, MITM proxy, and the test hotspot.

This package plays the role of the paper's WiFi hotspot + mitmproxy +
packet capture (Figure 1, steps 4–6): every connection an app device makes
is recorded as a :class:`FlowRecord`; when interception is enabled, the
:class:`MITMProxy` forges certificate chains and — when the client accepts
them — exposes decrypted payloads.
"""

from repro.netsim.capture import TrafficCapture
from repro.netsim.flow import FlowRecord, Payload
from repro.netsim.proxy import MITMProxy
from repro.netsim.simulate import simulate_flow

__all__ = ["FlowRecord", "MITMProxy", "Payload", "TrafficCapture", "simulate_flow"]
