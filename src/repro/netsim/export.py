"""Capture serialization.

The paper released its dataset alongside the code; this module gives the
reproduction the same property: captures round-trip through plain JSON so
detector runs can be archived, shared, and re-analyzed without re-running
the simulation.

Ground-truth fields are preserved (they are what makes an archived
capture useful for evaluating new detectors), but payload contents are
only written for flows that were actually decrypted — an archived capture
leaks nothing an on-path observer would not have had.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.errors import EncodingError
from repro.netsim.capture import TrafficCapture
from repro.netsim.flow import FlowRecord, Payload
from repro.tls.ciphers import ALL_SUITES, CipherSuite
from repro.tls.connection import ConnectionTrace
from repro.tls.records import ContentType, Direction, TLSRecord, TLSVersion
from repro.util.simtime import Timestamp

_SUITES_BY_NAME: Dict[str, CipherSuite] = {s.name: s for s in ALL_SUITES}

FORMAT_VERSION = 1


def flow_to_dict(flow: FlowRecord) -> dict:
    """One flow as a JSON-safe dict."""
    return {
        "sni": flow.sni,
        "started_at": flow.started_at.unix,
        "app_id": flow.app_id,
        "platform": flow.platform,
        "mitm_attempted": flow.mitm_attempted,
        "version": flow.version.value if flow.version else None,
        "cipher": flow.cipher.name if flow.cipher else None,
        "offered_suites": [s.name for s in flow.offered_suites],
        "handshake_completed": flow.handshake_completed,
        "plaintext_visible": flow.plaintext_visible,
        "client_fingerprint": flow.client_fingerprint,
        "os_initiated": flow.os_initiated,
        "teardown": flow.trace.teardown,
        "records": [
            {
                "type": r.content_type.value,
                "dir": r.direction.value,
                "len": r.length,
            }
            for r in flow.trace.records
        ],
        "payloads": [
            {
                "method": p.method,
                "path": p.path,
                "fields": [list(kv) for kv in p.fields],
            }
            for p in (flow._payloads if flow.plaintext_visible else ())
        ],
        "gt_pinned": flow.gt_pinned,
        "gt_failure_reason": flow.gt_failure_reason,
    }


def flow_from_dict(data: dict) -> FlowRecord:
    """Inverse of :func:`flow_to_dict`.

    Raises:
        EncodingError: on malformed input.
    """
    try:
        records = [
            TLSRecord(
                ContentType(r["type"]),
                Direction(r["dir"]),
                int(r["len"]),
            )
            for r in data["records"]
        ]
        payloads = tuple(
            Payload(
                method=p["method"],
                path=p["path"],
                fields=tuple((k, v) for k, v in p["fields"]),
            )
            for p in data.get("payloads", [])
        )
        version = TLSVersion(data["version"]) if data.get("version") else None
        cipher = (
            _SUITES_BY_NAME.get(data["cipher"]) if data.get("cipher") else None
        )
        return FlowRecord(
            sni=data["sni"],
            started_at=Timestamp(int(data["started_at"])),
            app_id=data.get("app_id", ""),
            platform=data.get("platform", ""),
            mitm_attempted=bool(data.get("mitm_attempted", False)),
            version=version,
            cipher=cipher,
            offered_suites=tuple(
                _SUITES_BY_NAME[name]
                for name in data.get("offered_suites", [])
                if name in _SUITES_BY_NAME
            ),
            trace=ConnectionTrace(
                records=records, teardown=data.get("teardown", "open")
            ),
            handshake_completed=bool(data.get("handshake_completed", False)),
            plaintext_visible=bool(data.get("plaintext_visible", False)),
            client_fingerprint=data.get("client_fingerprint", ""),
            os_initiated=bool(data.get("os_initiated", False)),
            _payloads=payloads,
            gt_pinned=bool(data.get("gt_pinned", False)),
            gt_failure_reason=data.get("gt_failure_reason", ""),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise EncodingError(f"malformed flow record: {exc}") from exc


def dump_capture(capture: TrafficCapture) -> str:
    """Serialize a capture to a JSON string."""
    return json.dumps(
        {
            "format": FORMAT_VERSION,
            "flows": [flow_to_dict(f) for f in capture],
        }
    )


def load_capture(text: str) -> TrafficCapture:
    """Parse a capture serialized by :func:`dump_capture`.

    Raises:
        EncodingError: on malformed JSON or unsupported format version.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise EncodingError(f"not a capture document: {exc}") from exc
    if payload.get("format") != FORMAT_VERSION:
        raise EncodingError(
            f"unsupported capture format: {payload.get('format')!r}"
        )
    return TrafficCapture(flow_from_dict(f) for f in payload.get("flows", []))
