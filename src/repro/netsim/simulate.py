"""Connection-level simulation: one app connection → one flow record.

:func:`simulate_flow` composes the layers: the (optional) proxy forges a
chain, the TLS handshake runs with the client's validation policy, the
record trace is synthesized, and the result is packaged as a
:class:`FlowRecord` ready for capture.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.netsim.flow import FlowRecord, Payload
from repro.netsim.proxy import MITMProxy
from repro.servers.endpoint import ServerEndpoint
from repro.tls.connection import (
    ConnectionTrace,
    TEARDOWN_RST,
    synthesize_trace,
)
from repro.tls.fingerprint import ja3_fingerprint
from repro.tls.handshake import ClientProfile, perform_handshake
from repro.tls.records import ContentType, Direction, TLSRecord
from repro.util.rng import DeterministicRng
from repro.util.simtime import Timestamp


def _transient_failure_trace(rng: DeterministicRng) -> ConnectionTrace:
    """A server-side failure: SYN-level or mid-handshake reset.

    These occur in both experiment settings and are the reason "failure
    under MITM" alone cannot prove pinning.
    """
    trace = ConnectionTrace()
    if rng.chance(0.5):
        trace.records.append(
            TLSRecord(
                ContentType.HANDSHAKE,
                Direction.CLIENT_TO_SERVER,
                512,
                ContentType.HANDSHAKE,
            )
        )
    trace.teardown = TEARDOWN_RST
    return trace


def simulate_flow(
    client: ClientProfile,
    endpoint: ServerEndpoint,
    when: Timestamp,
    rng: DeterministicRng,
    *,
    payloads: Sequence[Payload] = (),
    proxy: Optional[MITMProxy] = None,
    app_id: str = "",
    platform: str = "",
    os_initiated: bool = False,
    transient_failure_prob: float = 0.0,
    gt_pinned: bool = False,
) -> FlowRecord:
    """Simulate one connection and return its capture record.

    Args:
        client: the app's client profile for this destination.
        endpoint: the server.
        when: connection start time.
        rng: randomness for the trace and failure injection.
        payloads: application messages the app intends to send.  An empty
            sequence models a redundant connection that is established but
            never used.
        proxy: interception proxy, or None for the baseline setting.
        app_id / platform / os_initiated: capture metadata.
        transient_failure_prob: probability of a server-side failure
            unrelated to TLS interception.
        gt_pinned: ground-truth flag stored on the record for scoring.
    """
    flow = FlowRecord(
        sni=endpoint.hostname,
        started_at=when,
        app_id=app_id,
        platform=platform,
        mitm_attempted=proxy is not None,
        offered_suites=tuple(client.offered_suites),
        client_fingerprint=ja3_fingerprint(
            client.offered_versions, client.offered_suites
        ),
        os_initiated=os_initiated,
        gt_pinned=gt_pinned,
    )

    if rng.chance(transient_failure_prob):
        flow.trace = _transient_failure_trace(rng)
        flow.gt_failure_reason = "transient"
        return flow

    presented = proxy.forge_chain(endpoint) if proxy is not None else None
    outcome = perform_handshake(client, endpoint, when, presented_chain=presented)

    flow.version = outcome.version
    flow.cipher = outcome.cipher
    flow.handshake_completed = outcome.success
    flow.gt_failure_reason = outcome.failure_reason

    sends_data = bool(payloads) and outcome.success
    flow.trace = synthesize_trace(
        outcome,
        rng,
        client_payload_records=len(payloads) if sends_data else 0,
        server_payload_records=len(payloads) if sends_data else 0,
        closes_cleanly=rng.chance(0.6),
    )

    if sends_data:
        flow._payloads = tuple(payloads)
        # The proxy can read the traffic iff it terminated TLS, i.e. the
        # client accepted the forged chain.
        flow.plaintext_visible = proxy is not None
    return flow
