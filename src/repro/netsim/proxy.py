"""The interception proxy (mitmproxy stand-in).

The proxy owns a CA certificate.  For each intercepted hostname it forges a
leaf chain on the fly, signed by that CA, mirroring mitmproxy's behaviour.
Devices in the testbed have the proxy CA installed in their system store,
so clients doing *default* validation accept the forgery and the proxy can
read their traffic; pinned clients reject it.
"""

from __future__ import annotations

from typing import Dict

from repro.pki.authority import CertificateAuthority
from repro.pki.certificate import Certificate
from repro.pki.chain import CertificateChain
from repro.servers.endpoint import ServerEndpoint
from repro.util.rng import DeterministicRng
from repro.util.simtime import STUDY_START


class MITMProxy:
    """Forges per-hostname chains under its own CA."""

    def __init__(self, rng: DeterministicRng, ca_name: str = "mitmproxy"):
        self._rng = rng
        self.authority = CertificateAuthority.self_signed_root(
            ca_name,
            rng.child("proxy-ca"),
            not_before=STUDY_START.plus_years(-1),
            lifetime_years=3.0,
        )
        self._forged: Dict[str, CertificateChain] = {}

    @property
    def ca_certificate(self) -> Certificate:
        """The CA certificate operators install on test devices."""
        return self.authority.certificate

    def forge_chain(self, endpoint: ServerEndpoint) -> CertificateChain:
        """The chain the client sees when this proxy intercepts.

        mitmproxy copies the upstream leaf's names onto a fresh key signed
        by its CA; the forgery is cached per hostname.

        The forged certificate is a pure function of the proxy seed and the
        hostname (key material and serial derive from a per-hostname child
        stream, not the CA's issuance counter), so two proxy instances with
        the same seed forge identical chains regardless of how many other
        hostnames each has intercepted.  The parallel execution engine
        depends on this: every worker process owns its own proxy, and the
        forgeries must still match bit-for-bit across any work schedule.
        """
        hostname = endpoint.hostname
        cached = self._forged.get(hostname)
        if cached is not None:
            return cached
        upstream_leaf = endpoint.chain.leaf
        san = upstream_leaf.san if upstream_leaf.san else (hostname,)
        leaf, _ = self.authority.issue(
            upstream_leaf.subject.common_name,
            san=san,
            not_before=STUDY_START.plus_days(-1),
            lifetime_days=365,
            rng=self._rng.child("forge", hostname),
            serial=self.authority.stateless_serial("forge", hostname),
        )
        chain = CertificateChain.of(leaf, self.authority.certificate)
        self._forged[hostname] = chain
        return chain

    def forged_count(self) -> int:
        return len(self._forged)
