"""Traffic captures.

A :class:`TrafficCapture` is the pcap of one experiment run: an ordered
list of :class:`FlowRecord` with filtering helpers the dynamic pipeline
uses (per-app, per-destination, direct vs intercepted).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set

from repro.netsim.flow import FlowRecord


class TrafficCapture:
    """An ordered collection of captured flows."""

    def __init__(self, flows: Iterable[FlowRecord] = ()):
        self.flows: List[FlowRecord] = list(flows)

    def add(self, flow: FlowRecord) -> None:
        self.flows.append(flow)

    def extend(self, flows: Iterable[FlowRecord]) -> None:
        self.flows.extend(flows)

    def __len__(self) -> int:
        return len(self.flows)

    def __iter__(self) -> Iterator[FlowRecord]:
        return iter(self.flows)

    # -- filters -------------------------------------------------------------

    def for_app(self, app_id: str) -> "TrafficCapture":
        return TrafficCapture(f for f in self.flows if f.app_id == app_id)

    def for_destination(self, sni: str) -> "TrafficCapture":
        sni = sni.lower()
        return TrafficCapture(f for f in self.flows if f.sni.lower() == sni)

    def without_os_traffic(self) -> "TrafficCapture":
        """Drop OS-initiated flows.

        Note: the real study could *not* do this directly (OS and app flows
        share a fingerprint); it is available here for ablations that
        quantify how much the associated-domains exclusion loses.
        """
        return TrafficCapture(f for f in self.flows if not f.os_initiated)

    def excluding_destinations(self, hostnames: Iterable[str]) -> "TrafficCapture":
        excluded: Set[str] = {h.lower() for h in hostnames}
        return TrafficCapture(
            f for f in self.flows if f.sni.lower() not in excluded
        )

    def destinations(self) -> Set[str]:
        """Distinct SNI values (99 % of study flows had a non-empty SNI)."""
        return {f.sni.lower() for f in self.flows if f.sni}

    def by_destination(self) -> Dict[str, List[FlowRecord]]:
        grouped: Dict[str, List[FlowRecord]] = {}
        for flow in self.flows:
            if flow.sni:
                grouped.setdefault(flow.sni.lower(), []).append(flow)
        return grouped

    def app_ids(self) -> Set[str]:
        return {f.app_id for f in self.flows if f.app_id}
