"""Wire protocol: newline-delimited JSON over a unix domain socket.

Deliberately minimal.  Each connection carries a sequence of requests;
every request is one JSON object on one line, every response likewise.
A request names an ``op`` (``submit`` / ``status`` / ``result`` /
``cancel`` / ``stats`` / ``ping`` / ``shutdown``); a response always
carries ``ok`` — ``True`` with op-specific fields, or ``False`` with
``error`` (a stable machine-readable code) and ``message``.

Framing is a plain ``\\n`` because every payload is
``json.dumps``-encoded (newlines inside strings are escaped), so a line
is always exactly one document.  Study stdout rides inside a JSON string
field for the same reason.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

#: Default socket path, relative to the daemon's working directory.
DEFAULT_SOCKET = "repro.sock"

#: Hard cap on one message's size.  A full-scale study's stdout is a few
#: hundred KB; this bounds a malformed peer, not legitimate traffic.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


class ProtocolError(ValueError):
    """A peer sent something that is not a one-line JSON object."""


def write_message(stream, message: Dict[str, Any]) -> None:
    """Write one message as a single JSON line and flush it."""
    line = json.dumps(message, sort_keys=True, separators=(",", ":"))
    stream.write(line.encode("utf-8") + b"\n")
    stream.flush()


def read_message(stream) -> Optional[Dict[str, Any]]:
    """Read one message; ``None`` on a clean EOF.

    Raises :class:`ProtocolError` for oversized lines, invalid JSON, or
    a JSON value that is not an object.
    """
    line = stream.readline(MAX_MESSAGE_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message exceeds {MAX_MESSAGE_BYTES} bytes")
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"invalid JSON message: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(f"expected a JSON object, got {type(obj).__name__}")
    return obj


def ok_response(**fields: Any) -> Dict[str, Any]:
    response: Dict[str, Any] = {"ok": True}
    response.update(fields)
    return response


def error_response(code: str, message: str) -> Dict[str, Any]:
    return {"ok": False, "error": code, "message": message}
