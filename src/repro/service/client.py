""":class:`ServiceClient` — the thin client behind ``repro submit``.

One connection per request (the protocol is stateless), so a client
survives daemon restarts between calls and never holds the daemon's
accept loop hostage.  The only long-lived connection is a waiting
``result`` request, which blocks server-side until the job finishes.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Optional

from repro.service import protocol

#: Sentinel distinguishing "use the client default" from "no timeout".
_DEFAULT = object()


class ServiceError(RuntimeError):
    """The daemon answered with an error (or not at all)."""

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code


class ServiceClient:
    """Talk to a :class:`~repro.service.daemon.StudyService`.

    Args:
        socket_path: the daemon's unix socket.
        timeout: per-request socket timeout for non-waiting requests.
    """

    def __init__(
        self,
        socket_path: str = protocol.DEFAULT_SOCKET,
        timeout: float = 10.0,
    ):
        self.socket_path = str(socket_path)
        self.timeout = timeout

    def _request(self, message: Dict[str, Any], timeout: Any = _DEFAULT) -> Dict[str, Any]:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.settimeout(self.timeout if timeout is _DEFAULT else timeout)
            sock.connect(self.socket_path)
            stream = sock.makefile("rwb")
            protocol.write_message(stream, message)
            response = protocol.read_message(stream)
        except OSError as exc:
            raise ServiceError(
                "connect", f"cannot reach service at {self.socket_path}: {exc}"
            ) from exc
        finally:
            sock.close()
        if response is None:
            raise ServiceError("closed", "service closed the connection")
        if not response.get("ok"):
            raise ServiceError(
                response.get("error", "unknown"),
                response.get("message", "unspecified error"),
            )
        return response

    # ------------------------------------------------------------------
    # Operations

    def ping(self) -> Dict[str, Any]:
        return self._request({"op": "ping"})

    def submit(
        self,
        kind: str,
        config: Dict[str, Any],
        metrics_out: Optional[str] = None,
        report_out: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit a job; returns its wire description (``id``, ``state``)."""
        return self._request(
            {
                "op": "submit",
                "kind": kind,
                "config": config,
                "metrics_out": metrics_out,
                "report_out": report_out,
            }
        )["job"]

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request({"op": "status", "id": job_id})["job"]

    def result(
        self,
        job_id: str,
        wait: bool = True,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """The job's terminal record, including output.

        With ``wait`` (the default) this blocks — without any socket
        timeout unless ``timeout`` is given — until the job finishes.
        """
        return self._request(
            {"op": "result", "id": job_id, "wait": wait, "timeout": timeout},
            timeout=timeout,
        )["job"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request({"op": "cancel", "id": job_id})["job"]

    def stats(self) -> Dict[str, Any]:
        response = self._request({"op": "stats"})
        return {key: value for key, value in response.items() if key != "ok"}

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to drain and exit."""
        return self._request({"op": "shutdown"})

    def submit_and_wait(
        self,
        kind: str,
        config: Dict[str, Any],
        metrics_out: Optional[str] = None,
        report_out: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Submit a job and block until it reaches a terminal state."""
        job = self.submit(kind, config, metrics_out=metrics_out, report_out=report_out)
        return self.result(job["id"], wait=True, timeout=timeout)
