"""The long-lived study service (DESIGN.md §14).

Running a study from a cold CLI pays the same fixed costs every time:
fork-and-bootstrap a worker pool, regenerate the corpus, open the result
store.  The service keeps all three **warm across requests**:

* :mod:`repro.service.daemon` — :class:`StudyService`, the daemon behind
  ``repro serve``.  It owns one shared
  :class:`~repro.core.exec.WarmPool`, one content-addressed result-store
  directory, and a per-``(seed, scale)`` corpus cache, and executes jobs
  through the ordinary :class:`~repro.core.analysis.Study` /
  :class:`~repro.core.sweep.SweepEngine` machinery so output stays
  byte-identical to a direct CLI run.
* :mod:`repro.service.jobs` — the job layer: :class:`Job` and its state
  machine, the bounded FIFO :class:`JobQueue`, and the
  :class:`JobRunner` worker threads with a concurrency cap.
* :mod:`repro.service.protocol` — newline-delimited JSON over a unix
  domain socket; one request, one response, per line.
* :mod:`repro.service.client` — :class:`ServiceClient`, the thin client
  behind ``repro submit`` / ``repro jobs``.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import StudyService
from repro.service.jobs import (
    CANCELLED,
    COMPLETED,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Draining,
    Job,
    JobQueue,
    JobRunner,
    QueueFull,
    UnknownJob,
)
from repro.service.protocol import DEFAULT_SOCKET, ProtocolError

__all__ = [
    "CANCELLED",
    "COMPLETED",
    "DEFAULT_SOCKET",
    "Draining",
    "FAILED",
    "Job",
    "JobQueue",
    "JobRunner",
    "ProtocolError",
    "QUEUED",
    "QueueFull",
    "RUNNING",
    "ServiceClient",
    "ServiceError",
    "StudyService",
    "TERMINAL_STATES",
    "UnknownJob",
]
