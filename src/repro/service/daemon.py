""":class:`StudyService` — the long-lived daemon behind ``repro serve``.

What stays warm across jobs (the whole point of the service):

* **One worker pool.**  A :class:`~repro.core.exec.WarmPool` built for
  the first pooled job and handed to every subsequent compatible
  :class:`~repro.core.analysis.Study` / `SweepEngine`; forked workers
  survive job boundaries.  The pool is recycled (shut down and rebuilt)
  only when a job needs a different corpus.  Fault-injected jobs never
  share it — they run on their own transient pools, exactly as the
  engine's compatibility rules dictate.
* **One result store.**  Every non-faulted job runs against the same
  content-addressed store directory, so a second submission of an
  overlapping configuration warm-starts from the first one's entries.
  Each job gets a *fresh* :class:`~repro.core.exec.ResultStore` handle
  on that directory, so per-job hit/miss statistics stay per-job.
* **Per-``(seed, scale)`` corpora.**  Generation is deterministic, so
  each corpus is built once and cached; sweeps share the same cache
  dict in place.

Jobs execute through the ordinary ``Study`` / ``SweepEngine`` machinery
and render through :mod:`repro.reporting.render`, so their output is
byte-identical to a direct CLI run.  Each job runs under its own
:class:`~repro.core.obs.Recorder`; after optional per-job metrics
export, the job recorder merges into the service-level recorder, which
accumulates ``service.jobs.{submitted,completed,failed,cancelled}``, the
``service.job.queue_wait_s`` histogram, and the
``service.pool.{created,reused,recycled}`` counters alongside every
engine/store metric the jobs produced.

Shutdown is a graceful drain: on SIGTERM (or the ``shutdown`` op) the
queue rejects new submits, accepted jobs run to completion, the pool and
socket are torn down, and the process exits 0.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core import obs
from repro.core.analysis import Study
from repro.core.exec import ExecutionPlan, ResultStore, SeededFaults, WarmPool
from repro.corpus import CorpusConfig, CorpusGenerator
from repro.reporting.render import render_study_stdout, render_sweep_stdout
from repro.service import protocol
from repro.service.jobs import (
    Draining,
    Job,
    JobQueue,
    JobRunner,
    QueueFull,
    UnknownJob,
)


class StudyService:
    """The daemon: socket server + job runner + warm execution state.

    Args:
        socket_path: unix-domain socket to listen on.
        store_dir: shared result-store directory; ``None`` disables the
            cross-job store (every job runs cold).
        workers: size of the shared warm pool; ``1`` keeps the service
            serial (no pool is ever created).
        sleep_s: dynamic capture window, fixed service-wide — it enters
            corpus/store fingerprints, so one service serves one value.
        queue_size: bounded FIFO capacity; submits beyond it fail fast.
        max_concurrent: jobs running simultaneously.  The default of 1
            serialises jobs, which keeps the per-job telemetry funnel
            exact; higher values trade precise per-job attribution of
            funnel counters for throughput (service totals stay exact).
        log: optional callable for daemon commentary lines.
    """

    def __init__(
        self,
        socket_path: str = protocol.DEFAULT_SOCKET,
        store_dir: Optional[str] = None,
        workers: int = 1,
        sleep_s: float = 30.0,
        queue_size: int = 16,
        max_concurrent: int = 1,
        log: Optional[Callable[[str], None]] = None,
    ):
        self.socket_path = str(socket_path)
        self.store_dir = store_dir
        self.workers = int(workers)
        self.sleep_s = sleep_s
        self.recorder = obs.Recorder()
        self.queue = JobQueue(maxsize=queue_size)
        self.runner = JobRunner(
            self.queue,
            self._execute,
            max_concurrent=max_concurrent,
            on_finish=self._on_finish,
        )
        self._log = log or (lambda line: None)
        self._corpora: Dict[Tuple[int, float], Any] = {}
        self._pool: Optional[WarmPool] = None
        self._pool_lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._started = False

    # ------------------------------------------------------------------
    # Warm execution state

    def _corpus(self, seed: int, scale: float):
        key = (int(seed), float(scale))
        if key in self._corpora:
            self.recorder.count("service.corpus.reused")
            return self._corpora[key]
        config = CorpusConfig(seed=key[0])
        if key[1] != 1.0:
            config = config.scaled(key[1])
        corpus = CorpusGenerator(config).generate()
        self._corpora[key] = corpus
        self.recorder.count("service.corpus.built")
        return corpus

    def _pool_for(self, corpus) -> Optional[WarmPool]:
        """The shared warm pool for ``corpus``, recycling on mismatch.

        Returns ``None`` for a serial service (``workers == 1``) — the
        studies then run serial plans and never touch a pool.
        """
        if self.workers <= 1:
            return None
        with self._pool_lock:
            if self._pool is not None and not self._pool.closed:
                if self._pool.compatible_with(corpus, self.sleep_s, None, True):
                    self.recorder.count("service.pool.reused")
                    return self._pool
                self._pool.shutdown()
                self._pool = None
                self.recorder.count("service.pool.recycled")
            self._pool = WarmPool(corpus, self.workers, sleep_s=self.sleep_s, telemetry=True)
            self.recorder.count("service.pool.created")
            return self._pool

    def _store_for(self, corpus) -> Optional[ResultStore]:
        if self.store_dir is None:
            return None
        return ResultStore(self.store_dir, corpus, sleep_s=self.sleep_s)

    # ------------------------------------------------------------------
    # Job execution (runner threads)

    def _execute(self, job: Job) -> Dict[str, Any]:
        self.recorder.observe("service.job.queue_wait_s", job.queue_wait_s or 0.0)
        self._log(f"{job.id}: running {job.kind}")
        if job.kind == "study":
            return self._execute_study(job)
        return self._execute_sweep(job)

    def _execute_study(self, job: Job) -> Dict[str, Any]:
        cfg = job.config
        corpus = self._corpus(cfg.get("seed", 2022), cfg.get("scale", 0.1))
        plan = ExecutionPlan(
            workers=cfg.get("workers", 1),
            chunk_size=cfg.get("chunk_size", 0),
            max_retries=cfg.get("max_retries", 1),
        )
        fault_rate = cfg.get("fault_rate", 0.0)
        faults = None
        if fault_rate > 0:
            faults = SeededFaults(fault_rate, seed=cfg.get("fault_seed", 0))
        # Faulted jobs: store-less (a hit would bypass the injection
        # site) and pool-less (the predicate is baked into worker init,
        # so the fault-free shared pool is incompatible by rule).
        store = self._store_for(corpus) if faults is None else None
        pool = self._pool_for(corpus) if faults is None else None
        recorder = obs.Recorder()
        study = Study(
            corpus,
            sleep_s=self.sleep_s,
            plan=plan,
            fault_predicate=faults,
            pool=pool,
        )
        results = study.run(recorder=recorder, store=store)
        output = render_study_stdout(results)
        self._export_job_metrics(job, recorder)
        self.recorder.merge_from(recorder)
        return {
            "output": output,
            "failures": len(results.failures),
            "store_hits": store.stats.unit_hits if store is not None else None,
            "store_misses": store.stats.unit_misses if store is not None else None,
        }

    def _execute_sweep(self, job: Job) -> Dict[str, Any]:
        from repro.core.sweep import SweepEngine, SweepSpec

        cfg = job.config
        spec = SweepSpec(
            seeds=tuple(cfg.get("seeds") or [2022]),
            scales=tuple(cfg.get("scales") or [0.1]),
            fault_rates=tuple(cfg.get("fault_rates") or [0.0]),
            detectors=tuple(cfg.get("detectors") or ["full"]),
            workers=tuple(cfg.get("workers") or [1]),
        )
        pool = None
        if any(w != 1 for w in spec.workers):
            # Warm the pool on the grid's first corpus; compatible
            # points share it, others build their own.
            pool = self._pool_for(self._corpus(spec.seeds[0], spec.scales[0]))
        engine = SweepEngine(
            spec,
            sleep_s=self.sleep_s,
            store_dir=self.store_dir,
            fault_seed=cfg.get("fault_seed", 0),
            progress=lambda line: self._log(f"{job.id}: {line}"),
            pool=pool,
            corpora=self._corpora,
        )
        results = engine.run()
        output = render_sweep_stdout(results)
        if job.report_out:
            import json

            with open(job.report_out, "w", encoding="utf-8") as handle:
                json.dump(results.to_json_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
        if results.telemetry is not None:
            self._export_job_metrics(job, results.telemetry)
            self.recorder.merge_from(results.telemetry)
        hits = sum(p.store_hits or 0 for p in results.points)
        misses = sum(p.store_misses or 0 for p in results.points)
        stored = any(p.store_hits is not None for p in results.points)
        return {
            "output": output,
            "failures": sum(p.failures for p in results.points),
            "store_hits": hits if stored else None,
            "store_misses": misses if stored else None,
        }

    def _export_job_metrics(self, job: Job, recorder: "obs.Recorder") -> None:
        """Write the job's own metrics JSON before it merges away."""
        if job.metrics_out:
            recorder.write_metrics(job.metrics_out)

    def _on_finish(self, job: Job) -> None:
        self.recorder.count(f"service.jobs.{job.state}")
        detail = f" ({job.error.splitlines()[0]})" if job.error else ""
        self._log(f"{job.id}: {job.state}{detail}")

    # ------------------------------------------------------------------
    # Socket server

    def start(self) -> None:
        """Bind the socket and start accepting requests and running jobs."""
        self._claim_socket()
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(self.socket_path)
        listener.listen(16)
        listener.settimeout(0.2)
        self._listener = listener
        self.runner.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="service-accept", daemon=True
        )
        self._accept_thread.start()
        self._started = True
        self._log(
            f"listening on {self.socket_path} "
            f"(workers={self.workers}, store={self.store_dir or 'off'})"
        )

    def _claim_socket(self) -> None:
        """Take over a stale socket file; refuse a live one."""
        if not os.path.exists(self.socket_path):
            return
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            probe.settimeout(0.5)
            probe.connect(self.socket_path)
        except OSError:
            os.unlink(self.socket_path)  # stale leftover from a dead daemon
        else:
            raise RuntimeError(f"a service is already listening on {self.socket_path}")
        finally:
            probe.close()

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed during shutdown
            thread = threading.Thread(
                target=self._handle_connection,
                args=(conn,),
                name="service-conn",
                daemon=True,
            )
            thread.start()

    def _handle_connection(self, conn: socket.socket) -> None:
        stream = conn.makefile("rwb")
        try:
            while True:
                try:
                    request = protocol.read_message(stream)
                except protocol.ProtocolError as exc:
                    protocol.write_message(stream, protocol.error_response("protocol", str(exc)))
                    return
                if request is None:
                    return
                protocol.write_message(stream, self._dispatch(request))
        except (BrokenPipeError, ConnectionResetError, ValueError, OSError):
            pass  # peer went away mid-exchange; nothing to clean up
        finally:
            try:
                stream.close()
            finally:
                conn.close()

    # ------------------------------------------------------------------
    # Request dispatch

    def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        handler = {
            "submit": self._op_submit,
            "status": self._op_status,
            "result": self._op_result,
            "cancel": self._op_cancel,
            "stats": self._op_stats,
            "ping": self._op_ping,
            "shutdown": self._op_shutdown,
        }.get(op)
        if handler is None:
            return protocol.error_response("unknown-op", f"unknown op {op!r}")
        try:
            return handler(request)
        except UnknownJob as exc:
            return protocol.error_response("unknown-job", f"no such job: {exc}")
        except Exception as exc:  # noqa: BLE001 - connection isolation boundary
            return protocol.error_response("internal", f"{type(exc).__name__}: {exc}")

    def _op_submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        kind = request.get("kind")
        config = request.get("config")
        if kind not in ("study", "sweep"):
            return protocol.error_response(
                "bad-request", f"kind must be 'study' or 'sweep', got {kind!r}"
            )
        if not isinstance(config, dict):
            return protocol.error_response("bad-request", "config must be an object")
        try:
            job = self.queue.submit(
                kind,
                config,
                metrics_out=request.get("metrics_out"),
                report_out=request.get("report_out"),
            )
        except Draining as exc:
            return protocol.error_response("draining", str(exc))
        except QueueFull as exc:
            return protocol.error_response("queue-full", str(exc))
        self.recorder.count("service.jobs.submitted")
        self._log(f"{job.id}: submitted {kind}")
        return protocol.ok_response(job=job.describe(), position=self.queue.position(job))

    def _op_status(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job = self.queue.job(str(request.get("id")))
        return protocol.ok_response(job=job.describe(), position=self.queue.position(job))

    def _op_result(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job = self.queue.job(str(request.get("id")))
        if request.get("wait", True):
            timeout = request.get("timeout")
            if not job.done.wait(timeout):
                return protocol.error_response("timeout", f"{job.id} still {job.state}")
        return protocol.ok_response(job=job.describe(include_output=True))

    def _op_cancel(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job = self.queue.cancel(str(request.get("id")))
        return protocol.ok_response(job=job.describe())

    def _op_stats(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return protocol.ok_response(
            pid=os.getpid(),
            draining=self.queue.draining,
            jobs=self.queue.counts(),
            counters=self.recorder.counters(),
        )

    def _op_ping(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return protocol.ok_response(pid=os.getpid())

    def _op_shutdown(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self._log("shutdown requested")
        self._stop.set()
        return protocol.ok_response(draining=True)

    # ------------------------------------------------------------------
    # Lifecycle

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Reject new submits and wait for accepted jobs to finish."""
        self.queue.start_draining()
        return self.queue.wait_idle(timeout)

    def stop(self) -> None:
        """Tear everything down: runner, pool, listener, socket file."""
        self._stop.set()
        if self._started:
            self.runner.stop(wait=True)
            if self._accept_thread is not None:
                self._accept_thread.join(timeout=2.0)
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown()
                self._pool = None
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        if os.path.exists(self.socket_path):
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        self._started = False

    def serve_forever(self) -> int:
        """Run until SIGTERM/SIGINT or a ``shutdown`` op, then drain.

        Returns the process exit code: 0 after a clean drain.
        """
        self.start()
        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, lambda *_: self._stop.set())
        try:
            while not self._stop.wait(0.2):
                pass
            self._log("draining")
            self.drain()
            self._log("drained; exiting")
            return 0
        finally:
            self.stop()
            for signum, handler in previous.items():
                signal.signal(signum, handler)

    # Context manager form for in-process use (tests).
    def __enter__(self) -> "StudyService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.drain()
        self.stop()
