"""The job layer: states, the bounded FIFO queue, the runner threads.

Pure in-process machinery — no sockets, no studies — so the scheduling
semantics (FIFO order, the concurrency cap, cancellation, drain) are
testable with synthetic jobs that just sleep.

Job lifecycle::

    QUEUED ──▶ RUNNING ──▶ COMPLETED
       │          │  └────▶ FAILED
       └──────────┴──────▶ CANCELLED

A queued job cancels immediately (it never starts).  A running job
cancels *cooperatively*: ``cancel_requested`` is set, the study runs to
completion (mid-run preemption would orphan pool workers and corrupt
checkpoint journals), and the runner discards its output and marks it
``CANCELLED``.  Every transition into a terminal state sets the job's
``done`` event, releasing ``result``-waiters.
"""

from __future__ import annotations

import threading
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.core import obs

QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"

STATES = (QUEUED, RUNNING, COMPLETED, FAILED, CANCELLED)
TERMINAL_STATES = (COMPLETED, FAILED, CANCELLED)

#: Job kinds the service executes.
KINDS = ("study", "sweep")


class QueueFull(RuntimeError):
    """The bounded queue is at capacity; the submit was rejected."""


class Draining(RuntimeError):
    """The service is draining; new submits are rejected."""


class UnknownJob(KeyError):
    """No job with the requested id was ever submitted."""


@dataclass
class Job:
    """One submitted unit of service work and its full lifecycle record."""

    id: str
    kind: str
    config: Dict[str, Any]
    #: Optional paths the daemon writes artifacts to (client-side absolute).
    metrics_out: Optional[str] = None
    report_out: Optional[str] = None

    state: str = QUEUED
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Seconds spent waiting in the queue (set when the job starts).
    queue_wait_s: Optional[float] = None
    #: The job's stdout — byte-identical to the direct CLI run.
    output: Optional[str] = None
    error: Optional[str] = None
    #: Study error-ledger size (retryable per-app failures), if run.
    failures: Optional[int] = None
    store_hits: Optional[int] = None
    store_misses: Optional[int] = None
    cancel_requested: bool = False
    done: threading.Event = field(default_factory=threading.Event, repr=False, compare=False)

    def describe(self, include_output: bool = False) -> Dict[str, Any]:
        """The job's wire form (plain JSON-encodable data)."""
        described: Dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "config": dict(self.config),
            "state": self.state,
            "queue_wait_s": self.queue_wait_s,
            "elapsed_s": (
                self.finished_at - self.started_at
                if self.finished_at is not None and self.started_at is not None
                else None
            ),
            "error": self.error,
            "failures": self.failures,
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "cancel_requested": self.cancel_requested,
        }
        if include_output:
            described["output"] = self.output
        return described


class JobQueue:
    """Bounded FIFO of pending jobs plus a registry of all jobs ever seen.

    All state transitions happen under one lock, so observers (the
    ``status`` op, the drain loop) always see a consistent picture.  The
    queue never runs anything — :class:`JobRunner` pulls from it.
    """

    def __init__(self, maxsize: int = 16):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._pending: Deque[Job] = deque()
        self._jobs: Dict[str, Job] = {}
        self._counter = 0
        self._running = 0
        self._draining = False

    # ------------------------------------------------------------------
    # Producer side

    def submit(
        self,
        kind: str,
        config: Dict[str, Any],
        metrics_out: Optional[str] = None,
        report_out: Optional[str] = None,
    ) -> Job:
        """Enqueue a job; raises :class:`Draining` / :class:`QueueFull`."""
        if kind not in KINDS:
            raise ValueError(f"unknown job kind {kind!r} (expected one of {KINDS})")
        with self._changed:
            if self._draining:
                raise Draining("service is draining; not accepting new jobs")
            if len(self._pending) >= self.maxsize:
                raise QueueFull(f"queue is full ({self.maxsize} pending jobs)")
            self._counter += 1
            job = Job(
                id=f"job-{self._counter:04d}",
                kind=kind,
                config=dict(config),
                metrics_out=metrics_out,
                report_out=report_out,
                submitted_at=obs.now(),
            )
            self._jobs[job.id] = job
            self._pending.append(job)
            self._changed.notify_all()
            return job

    # ------------------------------------------------------------------
    # Consumer side (the runner)

    def get(self, timeout: float) -> Optional[Job]:
        """Pop the oldest pending job and mark it RUNNING, or ``None``.

        Blocks up to ``timeout`` seconds waiting for a job to arrive.
        The QUEUED→RUNNING transition happens here, under the queue
        lock, so a concurrent cancel either removes the job before it
        starts or sets ``cancel_requested`` on a running one — never a
        lost race in between.
        """
        with self._changed:
            if not self._pending:
                self._changed.wait(timeout)
            if not self._pending:
                return None
            job = self._pending.popleft()
            job.state = RUNNING
            job.started_at = obs.now()
            job.queue_wait_s = job.started_at - job.submitted_at
            self._running += 1
            return job

    def finish(self, job: Job, state: str, **fields: Any) -> None:
        """Move a RUNNING job into a terminal state and wake waiters."""
        if state not in TERMINAL_STATES:
            raise ValueError(f"finish() requires a terminal state, got {state!r}")
        with self._changed:
            for name, value in fields.items():
                setattr(job, name, value)
            job.state = state
            job.finished_at = obs.now()
            self._running -= 1
            job.done.set()
            self._changed.notify_all()

    # ------------------------------------------------------------------
    # Control plane

    def cancel(self, job_id: str) -> Job:
        """Cancel a job: queued jobs die now, running ones cooperatively.

        Terminal jobs are left untouched (cancel is idempotent and never
        un-finishes anything).  Returns the job.
        """
        with self._changed:
            job = self._job_locked(job_id)
            if job.state == QUEUED:
                self._pending.remove(job)
                job.state = CANCELLED
                job.finished_at = obs.now()
                job.done.set()
                self._changed.notify_all()
            elif job.state == RUNNING:
                job.cancel_requested = True
            return job

    def job(self, job_id: str) -> Job:
        with self._lock:
            return self._job_locked(job_id)

    def _job_locked(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJob(job_id) from None

    def jobs(self) -> List[Job]:
        """Every job ever submitted, in submission order."""
        with self._lock:
            return list(self._jobs.values())

    def position(self, job: Job) -> Optional[int]:
        """0-based queue position of a pending job, else ``None``."""
        with self._lock:
            try:
                return list(self._pending).index(job)
            except ValueError:
                return None

    def counts(self) -> Dict[str, int]:
        """Jobs per state — the ledger the stats op reconciles against."""
        with self._lock:
            tally = {state: 0 for state in STATES}
            for job in self._jobs.values():
                tally[job.state] += 1
            return tally

    # ------------------------------------------------------------------
    # Drain

    def start_draining(self) -> None:
        """Reject new submits; already-accepted jobs still run."""
        with self._changed:
            self._draining = True
            self._changed.notify_all()

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    @property
    def running(self) -> int:
        with self._lock:
            return self._running

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until nothing is pending or running (True) or timeout."""
        deadline = None if timeout is None else obs.now() + timeout
        with self._changed:
            while self._pending or self._running:
                remaining = None
                if deadline is not None:
                    remaining = deadline - obs.now()
                    if remaining <= 0:
                        return False
                self._changed.wait(remaining if remaining is not None else 1.0)
            return True


class JobRunner:
    """``max_concurrent`` threads pulling jobs off the queue and running them.

    ``execute(job) -> dict`` does the actual work and returns terminal
    job fields (``output``, ``failures``, ...).  The runner owns the
    terminal transition: COMPLETED normally, CANCELLED when a
    cooperative cancel arrived mid-run (the output is discarded), FAILED
    with a traceback when ``execute`` raised.  ``on_finish(job)`` fires
    after every terminal transition — the daemon hangs its
    ``service.jobs.*`` counters there.
    """

    def __init__(
        self,
        queue: JobQueue,
        execute: Callable[[Job], Dict[str, Any]],
        max_concurrent: int = 1,
        on_finish: Optional[Callable[[Job], None]] = None,
    ):
        if max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent}")
        self.queue = queue
        self.execute = execute
        self.max_concurrent = max_concurrent
        self.on_finish = on_finish
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []

    def start(self) -> None:
        for index in range(self.max_concurrent):
            thread = threading.Thread(target=self._loop, name=f"job-runner-{index}", daemon=True)
            thread.start()
            self._threads.append(thread)

    def stop(self, wait: bool = True) -> None:
        """Stop pulling new jobs; optionally wait for in-flight ones."""
        self._stop.set()
        if wait:
            for thread in self._threads:
                thread.join()
        self._threads = []

    def _loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.get(timeout=0.1)
            if job is None:
                continue
            self._run(job)

    def _run(self, job: Job) -> None:
        try:
            fields = self.execute(job)
        except BaseException as exc:  # noqa: BLE001 - job isolation boundary
            self.queue.finish(
                job,
                FAILED,
                error=f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
            )
        else:
            if job.cancel_requested:
                # Cooperative cancel: the work finished, but the caller
                # asked for the job to die — drop its output.
                self.queue.finish(job, CANCELLED, output=None)
            else:
                self.queue.finish(job, COMPLETED, **fields)
        if self.on_finish is not None:
            self.on_finish(job)
