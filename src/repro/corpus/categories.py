"""Store categories and per-dataset category distributions.

Table 1 of the paper lists the top-10 categories per dataset; the
distributions below reproduce those heads and spread the remaining mass
over the long tail of store categories.  Tables 4 and 5 imply per-category
pinning propensities (Finance tops both platforms); the multipliers at the
bottom encode that skew.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.util.rng import DeterministicRng

# Play Store category labels (Android).
ANDROID_CATEGORIES: Tuple[str, ...] = (
    "Games", "Education", "Tools", "Music", "Books", "Business", "Lifestyle",
    "Entertainment", "Travel", "Personalization", "Weather", "Finance",
    "Shopping", "Food & Drink", "Social", "Productivity", "Photography",
    "Communication", "Health", "Sports", "News", "Medical", "Maps",
    "Weather Tools", "Automobile", "Parenting", "Libraries", "Events",
    "Art & Design", "Beauty", "House", "Comics", "Dating", "Video Players",
    "Casual",
)

# App Store category labels (iOS).
IOS_CATEGORIES: Tuple[str, ...] = (
    "Games", "Photo & Video", "Social Networking", "Education", "Finance",
    "Lifestyle", "Entertainment", "Utilities", "Productivity", "Weather",
    "Business", "Food & Drink", "Shopping", "Travel", "Health", "Sports",
    "Music", "News", "Books", "Medical", "Reference", "Navigation",
    "Magazines", "Developer Tools", "Stickers",
)

# Table 1 heads, as (category, share) with shares in [0, 1].  The remaining
# probability mass is spread uniformly over the platform's other categories.
_TABLE1_HEADS: Dict[Tuple[str, str], Tuple[Tuple[str, float], ...]] = {
    ("android", "random"): (
        ("Education", 0.12), ("Games", 0.12), ("Tools", 0.06), ("Music", 0.06),
        ("Books", 0.06), ("Business", 0.05), ("Lifestyle", 0.05),
        ("Entertainment", 0.04), ("Travel", 0.04), ("Personalization", 0.04),
    ),
    ("android", "popular"): (
        ("Games", 0.36), ("Weather", 0.02), ("Finance", 0.02),
        ("Shopping", 0.02), ("Entertainment", 0.02), ("Food & Drink", 0.02),
        ("Social", 0.02), ("Productivity", 0.02), ("Photography", 0.02),
        ("Music", 0.02),
    ),
    ("android", "common"): (
        ("Games", 0.18), ("Productivity", 0.12), ("Business", 0.07),
        ("Communication", 0.06), ("Finance", 0.06), ("Education", 0.05),
        ("Social", 0.05), ("Health", 0.04), ("Travel", 0.03),
        ("Lifestyle", 0.03),
    ),
    ("ios", "common"): (
        ("Games", 0.18), ("Productivity", 0.14), ("Business", 0.08),
        ("Social Networking", 0.07), ("Education", 0.06), ("Finance", 0.06),
        ("Utilities", 0.05), ("Photo & Video", 0.04), ("Health", 0.03),
        ("Lifestyle", 0.03),
    ),
    ("ios", "popular"): (
        ("Games", 0.21), ("Photo & Video", 0.11), ("Social Networking", 0.06),
        ("Education", 0.06), ("Finance", 0.06), ("Lifestyle", 0.05),
        ("Entertainment", 0.04), ("Utilities", 0.04), ("Productivity", 0.04),
        ("Weather", 0.04),
    ),
    ("ios", "random"): (
        ("Games", 0.15), ("Business", 0.11), ("Education", 0.11),
        ("Food & Drink", 0.07), ("Lifestyle", 0.07), ("Utilities", 0.06),
        ("Entertainment", 0.04), ("Health", 0.04), ("Travel", 0.04),
        ("Shopping", 0.03),
    ),
}

#: Per-category pinning propensity multipliers (platform-agnostic where the
#: label exists on both stores).  Calibrated from Tables 4/5: Finance apps
#: pin ~4.8x the Android average; "Games" — the most common category —
#: never reaches either top-10 list.
PINNING_MULTIPLIER: Dict[str, float] = {
    "Finance": 5.2,
    "Social": 3.4,
    "Social Networking": 2.2,
    "Events": 3.0,
    "Dating": 2.9,
    "Food & Drink": 2.6,
    "Shopping": 2.4,
    "Comics": 2.4,
    "Automobile": 1.7,
    "Travel": 1.9,
    "Weather": 1.2,
    "Photo & Video": 1.7,
    "Lifestyle": 1.5,
    "Sports": 1.5,
    "Navigation": 1.5,
    "Books": 1.3,
    "Health": 1.1,
    "Business": 0.9,
    "Productivity": 0.8,
    "Communication": 0.9,
    "News": 0.9,
    "Music": 0.7,
    "Entertainment": 0.8,
    "Education": 0.4,
    "Games": 0.25,
    "Tools": 0.5,
    "Utilities": 0.6,
    "Personalization": 0.3,
}


def pinning_multiplier(category: str) -> float:
    """Propensity multiplier for a category (1.0 when unlisted)."""
    return PINNING_MULTIPLIER.get(category, 1.0)


def category_distribution(platform: str, dataset: str) -> List[Tuple[str, float]]:
    """Full (category, probability) list for one dataset.

    The Table 1 heads keep their published shares; the remainder is spread
    uniformly over the platform's other categories.
    """
    heads = _TABLE1_HEADS[(platform, dataset)]
    all_categories = ANDROID_CATEGORIES if platform == "android" else IOS_CATEGORIES
    head_names = {name for name, _ in heads}
    tail = [c for c in all_categories if c not in head_names]
    head_mass = sum(share for _, share in heads)
    tail_share = max(0.0, 1.0 - head_mass) / max(1, len(tail))
    return list(heads) + [(c, tail_share) for c in tail]


def draw_category(platform: str, dataset: str, rng: DeterministicRng) -> str:
    """Sample a category for one app."""
    dist = category_distribution(platform, dataset)
    names = [name for name, _ in dist]
    weights = [w for _, w in dist]
    return rng.weighted_choice(names, weights)
