"""Common-dataset pair planning.

The Common dataset holds the same product on both platforms; Section 5.1
measures how (in)consistently those products pin.  This planner assigns
each pair a consistency class calibrated to the paper's counts (scaled to
the configured corpus size) and engineers the two platforms' plans so the
class actually manifests:

* ``both_identical`` — same pinned domain set on both platforms;
* ``both_partial`` — a shared pinned domain, plus per-platform extras the
  other platform never contacts (still "consistent" by the paper's
  definition);
* ``both_inconsistent`` — a domain pinned on one platform observed
  *unpinned* on the other;
* ``both_inconclusive`` — disjoint pinned sets, never observed
  cross-platform;
* ``android_only`` / ``ios_only`` — pinning on one platform, split into
  inconsistent (the pinned domain shows up unpinned on the other) and
  inconclusive (it never shows up).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.corpus.categories import draw_category, pinning_multiplier
from repro.corpus.factory import AppPlan
from repro.corpus.naming import app_identity
from repro.corpus.profiles import (
    COMMON_CONSISTENCY,
    DATASET_PROFILES,
    PINNING_STYLES,
)
from repro.util.rng import DeterministicRng

#: Android → iOS category label mapping for shared products.
_IOS_CATEGORY_MAP: Dict[str, str] = {
    "Social": "Social Networking",
    "Communication": "Social Networking",
    "Photography": "Photo & Video",
    "Tools": "Utilities",
    "Personalization": "Utilities",
    "Video Players": "Entertainment",
    "Maps": "Navigation",
    "Automobile": "Navigation",
    "Casual": "Games",
    "Comics": "Books",
    "Dating": "Lifestyle",
    "Events": "Lifestyle",
    "Art & Design": "Photo & Video",
    "Beauty": "Lifestyle",
    "House": "Lifestyle",
    "Parenting": "Lifestyle",
    "Libraries": "Developer Tools",
    "Weather Tools": "Weather",
}


def ios_category(android_category: str) -> str:
    from repro.corpus.categories import IOS_CATEGORIES

    mapped = _IOS_CATEGORY_MAP.get(android_category, android_category)
    return mapped if mapped in IOS_CATEGORIES else "Utilities"


def _scaled(count: int, n: int, base: int = 575) -> int:
    """Scale a paper count to corpus size n, keeping non-zero counts alive."""
    if count == 0:
        return 0
    return max(1, round(count * n / base))


def consistency_class_counts(n: int) -> Dict[str, int]:
    """Pair-class counts for a Common corpus of size n."""
    p = COMMON_CONSISTENCY
    counts = {
        "both_identical": _scaled(p.both_identical, n),
        "both_partial": _scaled(p.both_partial_consistent, n),
        "both_inconsistent": _scaled(p.both_inconsistent, n),
        "both_inconclusive": _scaled(p.both_inconclusive, n),
        "android_only_inconsistent": _scaled(p.android_only_inconsistent, n),
        "android_only_inconclusive": _scaled(
            p.android_only - p.android_only_inconsistent, n
        ),
        "ios_only_inconsistent": _scaled(p.ios_only_inconsistent, n),
        "ios_only_inconclusive": _scaled(p.ios_only - p.ios_only_inconsistent, n),
    }
    total = sum(counts.values())
    counts["none"] = max(0, n - total)
    return counts


@dataclass
class _PairShell:
    index: int
    owner: str
    owner_slug: str
    name: str
    android_category: str
    ios_category: str


class CommonPairPlanner:
    """Builds coordinated (Android, iOS) plan pairs."""

    def __init__(self, rng: DeterministicRng):
        self._rng = rng

    def _style_fields(self, platform: str, rng: DeterministicRng) -> dict:
        style = PINNING_STYLES[platform]
        mechanisms = list(style.mechanism_weights)
        mech = rng.weighted_choice(
            mechanisms, [style.mechanism_weights[m] for m in mechanisms]
        )
        scopes = list(style.scope_weights)
        forms = list(style.form_weights)
        return {
            "mechanism": mech,
            "scope": rng.weighted_choice(
                scopes, [style.scope_weights[s] for s in scopes]
            ),
            "form": rng.weighted_choice(
                forms, [style.form_weights[f] for f in forms]
            ),
            "obfuscate_first_party": rng.chance(style.obfuscated_rate),
        }

    def _base_plan(
        self, shell: _PairShell, platform: str, rng: DeterministicRng
    ) -> AppPlan:
        profile = DATASET_PROFILES[(platform, "common")]
        suffix = "" if platform == "android" else ".ios"
        return AppPlan(
            platform=platform,
            dataset="common",
            index=shell.index,
            rank=shell.index + 1,
            app_id=f"com.{shell.owner_slug}.app{suffix}",
            name=shell.name,
            owner=shell.owner,
            owner_slug=shell.owner_slug,
            category=(
                shell.android_category if platform == "android" else shell.ios_category
            ),
            weak_system=rng.chance(profile.app_weak_cipher_rate),
            pinned_weak=rng.chance(profile.pinned_weak_cipher_rate),
            cross_platform_id=f"common-{shell.index}",
            early_first_party=True,
        )

    def _apply_pinning(
        self, plan: AppPlan, pinned_hosts: List[str], rng: DeterministicRng
    ) -> None:
        plan.is_pinner = True
        plan.pin_first_party = True
        plan.pinned_first_party_hosts = pinned_hosts
        fields = self._style_fields(plan.platform, rng)
        plan.mechanism = fields["mechanism"]
        plan.scope = fields["scope"]
        plan.form = fields["form"]
        plan.obfuscate_first_party = fields["obfuscate_first_party"]

    def build_plans(self, n: int) -> List[Tuple[AppPlan, AppPlan]]:
        """Plan ``n`` coordinated pairs."""
        rng = self._rng
        shells: List[_PairShell] = []
        for i in range(n):
            id_rng = rng.child("identity", i)
            _, name, owner, owner_slug = app_identity(id_rng, "android", i)
            owner_slug = f"cm{i}{owner_slug}"
            android_cat = draw_category("android", "common", id_rng.child("cat"))
            shells.append(
                _PairShell(
                    index=i,
                    owner=owner,
                    owner_slug=owner_slug,
                    name=name,
                    android_category=android_cat,
                    ios_category=ios_category(android_cat),
                )
            )

        counts = consistency_class_counts(n)
        pinning_total = sum(v for k, v in counts.items() if k != "none")
        weights = [pinning_multiplier(s.android_category) for s in shells]
        pinning_shells = rng.child("designate").weighted_sample(
            shells, weights, pinning_total
        )
        class_sequence: List[str] = []
        for klass, count in counts.items():
            if klass != "none":
                class_sequence.extend([klass] * count)
        class_sequence = rng.child("classes").shuffled(class_sequence)

        assignment = {s.index: "none" for s in shells}
        for shell, klass in zip(pinning_shells, class_sequence):
            assignment[shell.index] = klass

        pairs: List[Tuple[AppPlan, AppPlan]] = []
        for shell in shells:
            pair_rng = rng.child("pair", shell.index)
            android = self._base_plan(shell, "android", pair_rng.child("a"))
            ios = self._base_plan(shell, "ios", pair_rng.child("i"))
            self._wire_class(
                assignment[shell.index], shell, android, ios, pair_rng
            )
            # iOS associated domains (66 % of apps specify none).
            if pair_rng.chance(0.34):
                hosts = [f"www.{shell.owner_slug}.com"]
                extra = pair_rng.randint(0, 7)
                hosts += [
                    f"link{j}.{shell.owner_slug}.com" for j in range(extra)
                ]
                ios.associated_domains = tuple(hosts)
            pairs.append((android, ios))
        return pairs

    def _wire_class(
        self,
        klass: str,
        shell: _PairShell,
        android: AppPlan,
        ios: AppPlan,
        rng: DeterministicRng,
    ) -> None:
        slug = shell.owner_slug
        api = f"api.{slug}.com"
        www = f"www.{slug}.com"
        events = f"events.{slug}.com"  # Android-side extra
        auth = f"auth.{slug}.com"  # iOS-side extra
        img = f"img.{slug}.com"  # iOS-side extra

        android.first_party_host_list = [api, www]
        ios.first_party_host_list = [api, www]

        if klass == "none":
            return

        if klass == "both_identical":
            self._apply_pinning(android, [api], rng.child("pa"))
            self._apply_pinning(ios, [api], rng.child("pi"))
            return

        if klass == "both_partial":
            android.first_party_host_list = [api, www, events]
            ios.first_party_host_list = [api, www, auth, img]
            self._apply_pinning(android, [api, events], rng.child("pa"))
            self._apply_pinning(ios, [api, auth, img], rng.child("pi"))
            return

        if klass == "both_inconsistent":
            variant = shell.index % 3
            if variant == 0:
                # Jaccard 0.5: android pins {api, events}; iOS pins {api}
                # and contacts events unpinned.
                android.first_party_host_list = [api, www, events]
                ios.first_party_host_list = [api, www, events]
                self._apply_pinning(android, [api, events], rng.child("pa"))
                self._apply_pinning(ios, [api], rng.child("pi"))
            elif variant == 1:
                # Jaccard 0.25: iOS pins {api, auth, img}; android pins
                # {api} and contacts auth+img unpinned.
                android.first_party_host_list = [api, www, auth, img]
                ios.first_party_host_list = [api, www, auth, img]
                self._apply_pinning(android, [api], rng.child("pa"))
                self._apply_pinning(ios, [api, auth, img], rng.child("pi"))
            else:
                # Jaccard 0: disjoint pinned sets, each observed unpinned
                # on the other platform.
                android.first_party_host_list = [api, www, events, auth]
                ios.first_party_host_list = [api, www, events, auth]
                self._apply_pinning(android, [events], rng.child("pa"))
                self._apply_pinning(ios, [auth], rng.child("pi"))
            return

        if klass == "both_inconclusive":
            android.first_party_host_list = [api, www, events]
            ios.first_party_host_list = [api, www, auth]
            self._apply_pinning(android, [events], rng.child("pa"))
            self._apply_pinning(ios, [auth], rng.child("pi"))
            return

        if klass == "android_only_inconsistent":
            # iOS contacts the pinned host without pinning it.
            self._apply_pinning(android, [api], rng.child("pa"))
            return

        if klass == "android_only_inconclusive":
            android.first_party_host_list = [api, www, events]
            ios.first_party_host_list = [api, www]
            self._apply_pinning(android, [events], rng.child("pa"))
            return

        if klass == "ios_only_inconsistent":
            self._apply_pinning(ios, [api], rng.child("pi"))
            return

        if klass == "ios_only_inconclusive":
            android.first_party_host_list = [api, www]
            ios.first_party_host_list = [api, www, auth]
            self._apply_pinning(ios, [auth], rng.child("pi"))
            return

        raise ValueError(f"unknown consistency class {klass!r}")
