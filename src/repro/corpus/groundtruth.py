"""Ground-truth accessors for detector auditing.

The synthetic corpus knows exactly what every detector *should* find:
which apps embed certificate material, which pin strings are greppable,
which NSC configs carry pin-sets, which destinations are pinned at
runtime, and which pinned destinations a Frida hook can bypass.  The
verification layer (:mod:`repro.core.verify`) scores every detector
against these predicates; they are factored out here so the oracle reads
as a comparison between two independent derivations rather than a
restatement of detector internals.

Each predicate mirrors one *observable* truth — what a perfect
implementation of the paper's technique could recover — not raw spec
state.  Obfuscated material is excluded from the static predicates
(invisible by design, Section 4.2), dormant specs from the runtime ones.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.appmodel.app import MobileApp
from repro.appmodel.pinning import PinForm, PinMechanism
from repro.core.circumvent.hooks import is_hookable
from repro.corpus.datasets import AppCorpus


def embeds_static_material(app: MobileApp) -> bool:
    """Should the content scans find certificate/pin material?

    True when a static-visible non-NSC spec ships material, or a
    non-pinning SDK embeds a CA bundle (Table 3's "Embedded
    Certificates" column counts both).
    """
    return app.embeds_pin_material()


def has_greppable_spki_pins(app: MobileApp) -> bool:
    """Should the SPKI-hash regex channels surface at least one pin?

    SPKI-form specs emit ``shaN/<b64>`` tokens into code files (smali /
    binary strings); obfuscated specs ship ``enc:``-mangled tokens the
    regex must not match, and NSC pin-sets live in XML the hash channels
    do not read.
    """
    return any(
        spec.visible_to_static()
        and spec.mechanism is not PinMechanism.NSC
        and spec.form in (PinForm.SPKI_SHA256, PinForm.SPKI_SHA1)
        for spec in app.pinning_specs
    )


def has_nsc_pin_sets(app: MobileApp) -> bool:
    """Should NSC extraction report pins for this (Android) app?

    Every NSC-mechanism spec materialises a ``<pin-set>`` in the config
    XML — including override-neutralised ones, which the prior-work
    technique still counts (the pins are present, just ineffective).
    """
    return any(
        spec.mechanism is PinMechanism.NSC for spec in app.pinning_specs
    )


def runtime_pinned_within(app: MobileApp, window_s: float) -> Set[str]:
    """Destinations pinned at runtime *and* contacted inside the window.

    Pinned domains the app never contacts during the capture are
    invisible to any dynamic method and excluded from scoring (the
    paper's partial-observation limitation, Section 5.6).
    """
    return {
        u.hostname
        for u in app.behavior.usages_within(window_s)
        if app.pins_domain(u.hostname)
    }


def bypassable_split(
    corpus: AppCorpus, app_id: str, platform: str, pinned: Set[str]
) -> Tuple[Set[str], Set[str]]:
    """Partition an app's pinned destinations by Frida hookability.

    Returns ``(bypassable, resistant)``: destinations whose validation
    policy is implemented by a catalogued (hookable) library versus
    custom TLS stacks that keep their pins.  This is the ground truth
    the circumvention pipeline's decrypted-traffic verdicts are audited
    against.
    """
    app = corpus.find_app(app_id).app
    store = (
        corpus.stores.android_aosp if platform == "android" else corpus.stores.ios
    )
    policy = app.runtime_policy(store)
    bypassable: Set[str] = set()
    resistant: Set[str] = set()
    for destination in pinned:
        override = policy.overrides.get(destination)
        library = (
            override.library if override is not None else policy.default.library
        )
        if is_hookable(library, platform):
            bypassable.add(destination)
        else:
            resistant.add(destination)
    return bypassable, resistant
