"""Corpus containers.

An :class:`AppCorpus` is the generated world: the PKI, the server side,
and the six app datasets.  ``PackagedApp`` is whichever platform wrapper
applies (:class:`~repro.appmodel.android.AndroidApp` or
:class:`~repro.appmodel.ios.IOSApp`); both expose ``.app`` (the ground
truth) and the platform package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.appmodel.android import AndroidApp
from repro.appmodel.ios import IOSApp
from repro.errors import CorpusError
from repro.pki.authority import PKIHierarchy
from repro.pki.store import StoreCatalog
from repro.servers.registry import EndpointRegistry

PackagedApp = Union[AndroidApp, IOSApp]

#: (platform, dataset) pairs in the study.
DatasetKey = Tuple[str, str]

DATASET_NAMES = ("common", "popular", "random")
PLATFORMS = ("android", "ios")


@dataclass
class AppCorpus:
    """Everything one seed generates."""

    seed: int
    hierarchy: PKIHierarchy
    stores: StoreCatalog
    registry: EndpointRegistry
    datasets: Dict[DatasetKey, List[PackagedApp]] = field(default_factory=dict)

    def dataset(self, platform: str, name: str) -> List[PackagedApp]:
        """One dataset, e.g. ``corpus.dataset("ios", "popular")``.

        Raises:
            CorpusError: for an unknown key.
        """
        key = (platform, name)
        if key not in self.datasets:
            raise CorpusError(f"no dataset {key!r} in this corpus")
        return self.datasets[key]

    def all_apps(self, platform: Optional[str] = None) -> List[PackagedApp]:
        """Unique apps, optionally filtered by platform."""
        seen = set()
        out: List[PackagedApp] = []
        for (plat, _), apps in sorted(self.datasets.items()):
            if platform is not None and plat != platform:
                continue
            for packaged in apps:
                if packaged.app.app_id not in seen:
                    seen.add(packaged.app.app_id)
                    out.append(packaged)
        return out

    def common_pairs(self) -> List[Tuple[AndroidApp, IOSApp]]:
        """Matched (Android, iOS) pairs of the Common dataset."""
        android = {
            a.app.cross_platform_id: a
            for a in self.dataset("android", "common")
            if a.app.cross_platform_id
        }
        pairs: List[Tuple[AndroidApp, IOSApp]] = []
        for ios_app in self.dataset("ios", "common"):
            match = android.get(ios_app.app.cross_platform_id)
            if match is not None:
                pairs.append((match, ios_app))
        return pairs

    def find_app(self, app_id: str) -> PackagedApp:
        """Locate an app anywhere in the corpus.

        Raises:
            CorpusError: if absent.
        """
        for apps in self.datasets.values():
            for packaged in apps:
                if packaged.app.app_id == app_id:
                    return packaged
        raise CorpusError(f"app {app_id!r} not in corpus")

    def total_unique_apps(self) -> int:
        """The headline corpus size (the paper's 5,079)."""
        return len(self.all_apps())
