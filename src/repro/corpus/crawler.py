"""Dataset collection over the store fronts (paper §3).

:class:`CollectionCampaign` re-derives the study's three dataset types
the way the authors did — AlternativeTo for Common, "Top Free" charts /
iTunes search for Popular, id-list sampling for Random — exercising every
collection quirk (the iTunes re-auth gauntlet included) and returning the
downloaded packages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.corpus.datasets import AppCorpus, PackagedApp
from repro.corpus.stores import (
    AlternativeTo,
    AppleAppStore,
    ITunesSession,
    PlayStore,
    RateLimitedCrawler,
)
from repro.errors import DeviceError
from repro.util.rng import DeterministicRng


@dataclass
class CollectionReport:
    """What a campaign gathered and what it cost."""

    android_apps: List[PackagedApp] = field(default_factory=list)
    ios_apps: List[PackagedApp] = field(default_factory=list)
    common_pairs: List[Tuple[str, str]] = field(default_factory=list)
    itunes_interventions: int = 0
    crawl_requests: int = 0


class CollectionCampaign:
    """Re-runs the paper's collection over a generated world."""

    def __init__(self, corpus: AppCorpus, seed: int = 0):
        self.corpus = corpus
        self._rng = DeterministicRng(seed).child("collection")
        all_android = corpus.all_apps("android")
        all_ios = corpus.all_apps("ios")
        self.play_store = PlayStore(all_android)
        self.app_store = AppleAppStore(all_ios)
        self.alternativeto = AlternativeTo(corpus)

    # -- Common ---------------------------------------------------------------

    def collect_common(self, max_pages: int = 1000) -> CollectionReport:
        """AlternativeTo crawl → download both sides of every pair."""
        report = CollectionReport()
        crawler = RateLimitedCrawler()
        report.common_pairs = crawler.crawl_alternativeto(
            self.alternativeto, max_pages
        )
        report.crawl_requests = len(crawler.log)

        session = ITunesSession()
        for android_id, ios_id in report.common_pairs:
            report.android_apps.append(self.play_store.download(android_id))
            report.ios_apps.append(
                self._download_ios(ios_id, session)
            )
        report.itunes_interventions = session.interventions
        return report

    # -- Popular ---------------------------------------------------------------

    def collect_popular(self, per_platform: int) -> CollectionReport:
        """Top-Free charts (Android) and iTunes category search (iOS)."""
        report = CollectionReport()

        android_pool: List[str] = []
        for listing in self.play_store._listings.values():
            android_pool.append(listing.app_id)
        # Chart crawl: take every category's chart, then sample.
        charts: List[str] = []
        categories = sorted(
            {l.category for l in self.play_store._listings.values()}
        )
        for category in categories:
            charts.extend(
                l.app_id for l in self.play_store.top_free(category)
            )
        picked = self._rng.sample(charts, per_platform)
        report.android_apps = [self.play_store.download(a) for a in picked]

        session = ITunesSession()
        ios_ids: List[str] = []
        for category in sorted(
            {l.category for l in self.app_store._listings.values()}
        ):
            ios_ids.extend(
                l.app_id for l in self.app_store.itunes_search(category)
            )
        for app_id in self._rng.sample(ios_ids, per_platform):
            report.ios_apps.append(self._download_ios(app_id, session))
        report.itunes_interventions = session.interventions
        return report

    # -- Random ---------------------------------------------------------------

    def collect_random(self, per_platform: int) -> CollectionReport:
        """Sample the full id lists (the 1.35M/1.25M lists, here: all)."""
        report = CollectionReport()
        session = ITunesSession()
        for app_id in self._rng.sample(
            self.play_store.all_app_ids(), per_platform
        ):
            report.android_apps.append(self.play_store.download(app_id))
        for app_id in self._rng.sample(
            self.app_store.all_app_ids(), per_platform
        ):
            report.ios_apps.append(self._download_ios(app_id, session))
        report.itunes_interventions = session.interventions
        return report

    # -- internals ----------------------------------------------------------------

    def _download_ios(self, app_id: str, session: ITunesSession) -> PackagedApp:
        """One iOS download, handling the semi-automated re-auth dance."""
        try:
            return self.app_store.download(app_id, session)
        except DeviceError:
            session.reauthenticate()
            return self.app_store.download(app_id, session)
