"""App-store fronts and download machinery (paper §3 and Appendix A).

The study's corpus collection was itself a system: GPlayCLI downloads
straight from the Play Store; iOS has no public download API, so the
authors drove the deprecated iTunes 12.6 GUI, babysitting periodic
re-authentication — the reason the study stops at thousands of iOS apps.
AlternativeTo supplied the cross-platform links for the Common set, and
the iTunes Search API the popular iOS lists.

This module models those services over a generated corpus so the
collection methodology (rate limits, crawl etiquette, the iOS download
gauntlet) is reproducible and testable, not just narrated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.corpus.datasets import AppCorpus, PackagedApp
from repro.errors import CorpusError, DeviceError
from repro.util.simtime import SimClock, Timestamp


@dataclass(frozen=True)
class StoreListing:
    """One store page: the metadata a crawler sees before downloading."""

    app_id: str
    name: str
    category: str
    rank: int
    platform: str
    price: float = 0.0


@dataclass
class CrawlRequest:
    """One logged request (the §7 ethics bookkeeping)."""

    url: str
    at: Timestamp
    user_agent: str


class CrawlLog:
    """Records every request a crawler makes."""

    def __init__(self):
        self.requests: List[CrawlRequest] = []

    def record(self, url: str, at: Timestamp, user_agent: str) -> None:
        self.requests.append(CrawlRequest(url=url, at=at, user_agent=user_agent))

    def max_rate_per_second(self) -> float:
        """Peak request rate over any 1-second window."""
        if len(self.requests) < 2:
            return float(len(self.requests))
        times = sorted(r.at.unix for r in self.requests)
        peak = 1
        start = 0
        for end in range(len(times)):
            while times[end] - times[start] >= 1:
                start += 1
            peak = max(peak, end - start + 1)
        return float(peak)

    def __len__(self) -> int:
        return len(self.requests)


class _StoreFront:
    """Shared listing/lookup machinery."""

    platform = ""

    def __init__(self, packaged_apps: Sequence[PackagedApp]):
        self._apps: Dict[str, PackagedApp] = {}
        self._listings: Dict[str, StoreListing] = {}
        for packaged in packaged_apps:
            app = packaged.app
            self._apps[app.app_id] = packaged
            self._listings[app.app_id] = StoreListing(
                app_id=app.app_id,
                name=app.name,
                category=app.category,
                rank=app.store_rank,
                platform=app.platform,
            )

    def listing(self, app_id: str) -> StoreListing:
        listing = self._listings.get(app_id)
        if listing is None:
            raise CorpusError(f"{app_id!r} is not listed on {self.platform}")
        return listing

    def all_app_ids(self) -> List[str]:
        return sorted(self._listings)

    def top_free(self, category: str, limit: int = 100) -> List[StoreListing]:
        """A category's "Top Free" chart, rank order."""
        rows = [
            l for l in self._listings.values() if l.category == category
        ]
        rows.sort(key=lambda l: l.rank)
        return rows[:limit]

    def __len__(self) -> int:
        return len(self._listings)


class PlayStore(_StoreFront):
    """Google Play: GPlayCLI-style direct downloads."""

    platform = "android"

    def download(self, app_id: str) -> PackagedApp:
        """Fetch an APK (always succeeds for listed apps)."""
        self.listing(app_id)
        return self._apps[app_id]


@dataclass
class ITunesSession:
    """The deprecated iTunes 12.6 GUI-automation session (Appendix A).

    Downloads occasionally require manual intervention (re-authentication,
    dialog dismissal) — ``downloads_per_reauth`` models how many succeed
    between interventions.  This is the scalability bottleneck that kept
    the paper's iOS corpus in the thousands.
    """

    downloads_per_reauth: int = 200
    authenticated: bool = True
    downloads_since_auth: int = 0
    interventions: int = 0

    def needs_attention(self) -> bool:
        return (
            not self.authenticated
            or self.downloads_since_auth >= self.downloads_per_reauth
        )

    def reauthenticate(self) -> None:
        """The manual step a human performs."""
        self.authenticated = True
        self.downloads_since_auth = 0
        self.interventions += 1

    def consume_download(self) -> None:
        if self.needs_attention():
            raise DeviceError(
                "iTunes session needs manual re-authentication"
            )
        self.downloads_since_auth += 1


class AppleAppStore(_StoreFront):
    """The App Store: search API public, downloads gated through iTunes."""

    platform = "ios"
    SEARCH_RESULT_CAP = 100  # the iTunes Search API's per-call maximum

    def itunes_search(self, term: str, limit: int = 100) -> List[StoreListing]:
        """iTunes Search API: term ≈ category name, ≤100 results."""
        limit = min(limit, self.SEARCH_RESULT_CAP)
        rows = [
            l
            for l in self._listings.values()
            if term.lower() in l.category.lower()
        ]
        rows.sort(key=lambda l: l.rank)
        return rows[:limit]

    def download(self, app_id: str, session: ITunesSession) -> PackagedApp:
        """Fetch an (encrypted) IPA through the iTunes session.

        Raises:
            DeviceError: when the session needs manual attention first.
            CorpusError: for unlisted apps.
        """
        self.listing(app_id)
        session.consume_download()
        return self._apps[app_id]


class AlternativeTo:
    """The crowd-sourced cross-platform index behind the Common set.

    Pages are sorted by popularity; a page links both stores only when
    the product ships on both.  The crawler etiquette from §7 — one
    request per second, contact info in the User-Agent — is enforced by
    :class:`RateLimitedCrawler`.
    """

    def __init__(self, corpus: AppCorpus):
        self._pages: List[Tuple[str, Optional[str], Optional[str]]] = []
        android = {
            p.app.cross_platform_id: p.app.app_id
            for p in corpus.dataset("android", "common")
            if p.app.cross_platform_id
        }
        ios = {
            p.app.cross_platform_id: p.app.app_id
            for p in corpus.dataset("ios", "common")
            if p.app.cross_platform_id
        }
        for cp_id in sorted(android.keys() | ios.keys()):
            self._pages.append(
                (cp_id, android.get(cp_id), ios.get(cp_id))
            )

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def page(self, index: int) -> Tuple[str, Optional[str], Optional[str]]:
        """(product id, Play Store link, App Store link) for one page."""
        return self._pages[index]


class RateLimitedCrawler:
    """A polite crawler: ≤1 request/second, identified User-Agent."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        user_agent: str = "repro-research-crawler/1.0 (contact: research@example.edu)",
        min_interval_s: float = 1.0,
    ):
        if "contact" not in user_agent:
            raise CorpusError(
                "crawler User-Agent must carry contact information (§7)"
            )
        self.clock = clock or SimClock()
        self.user_agent = user_agent
        self.min_interval_s = min_interval_s
        self.log = CrawlLog()

    def fetch(self, url: str):
        """Log one request, advancing the clock to respect the rate."""
        self.clock.advance(self.min_interval_s)
        self.log.record(url, self.clock.now, self.user_agent)

    def crawl_alternativeto(
        self, site: AlternativeTo, max_pages: int
    ) -> List[Tuple[str, str]]:
        """Walk popularity-ordered pages; keep both-store products.

        Returns (android app id, iOS app id) pairs — the Common dataset's
        raw material.
        """
        pairs: List[Tuple[str, str]] = []
        for index in range(min(max_pages, site.page_count)):
            self.fetch(f"https://alternativeto.example/page/{index}")
            _, android_id, ios_id = site.page(index)
            if android_id and ios_id:
                pairs.append((android_id, ios_id))
        return pairs
