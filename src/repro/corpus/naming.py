"""Deterministic name and hostname synthesis for the corpus."""

from __future__ import annotations

from typing import List, Tuple

from repro.util.rng import DeterministicRng

_ADJECTIVES = (
    "swift", "bright", "urban", "quiet", "lucky", "prime", "nova", "zen",
    "pixel", "hyper", "metro", "solar", "cosmo", "vivid", "alpine", "coral",
    "ember", "frost", "terra", "aero",
)
_NOUNS = (
    "ledger", "wallet", "chat", "quest", "planner", "market", "radar", "feed",
    "studio", "tracker", "board", "vault", "drive", "cast", "notes", "fit",
    "table", "route", "deck", "lens",
)
_COMPANY_SUFFIXES = ("Labs", "Inc", "Apps", "Soft", "Works", "Digital", "Studio")

#: Shared third-party infrastructure every app may touch (CDNs, ad/metrics
#: endpoints) — never pinned, high traffic volume.
GENERIC_THIRD_PARTY_HOSTS: Tuple[Tuple[str, str], ...] = (
    ("fonts.gstatic.com", "Google"),
    ("www.gstatic.com", "Google"),
    ("cdn.jsdelivr.net", "jsDelivr"),
    ("cdnjs.cloudflare.com", "Cloudflare"),
    ("api.segment.io", "Segment"),
    ("sdk.split.io", "Split"),
    ("in.appcenter.ms", "Microsoft"),
    ("api.mixpanel.com", "Mixpanel"),
    ("cdn.branch.io", "Branch"),
    ("ssl.google-analytics.com", "Google"),
)


def app_identity(
    rng: DeterministicRng, platform: str, index: int
) -> Tuple[str, str, str, str]:
    """Synthesize ``(app_id, display_name, owner, owner_slug)``.

    The owner slug anchors the app's first-party domains, so the party
    directory can attribute them.
    """
    adjective = rng.choice(_ADJECTIVES)
    noun = rng.choice(_NOUNS)
    owner_slug = f"{adjective}{noun}{index}"
    owner = f"{adjective.capitalize()}{noun.capitalize()} {rng.choice(_COMPANY_SUFFIXES)}"
    display = f"{adjective.capitalize()} {noun.capitalize()}"
    tld = "com" if platform == "android" else rng.choice(["com", "io", "app"])
    app_id = f"com.{owner_slug}.{noun}"
    return app_id, display, owner, owner_slug


def first_party_hosts(owner_slug: str, count: int) -> List[str]:
    """First-party hostnames for an owner (api/www/cdn/auth...)."""
    prefixes = ["api", "www", "cdn", "auth", "events", "img"]
    return [f"{p}.{owner_slug}.com" for p in prefixes[:count]]
