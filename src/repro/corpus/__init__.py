"""App-store corpora.

Builds the study's six datasets (Common / Popular / Random × Android /
iOS) as synthetic apps with known ground truth, calibrated against the
paper's published distributions (Tables 1 and 3–9, Figures 2–5).

Entry point::

    from repro.corpus import CorpusConfig, CorpusGenerator

    corpus = CorpusGenerator(CorpusConfig(seed=2022)).generate()
    android_popular = corpus.dataset("android", "popular")
"""

from repro.corpus.crawler import CollectionCampaign, CollectionReport
from repro.corpus.datasets import AppCorpus, DatasetKey
from repro.corpus.generator import CorpusConfig, CorpusGenerator
from repro.corpus.spec import CorpusSpec, content_fingerprint

__all__ = [
    "AppCorpus",
    "CollectionCampaign",
    "CollectionReport",
    "CorpusConfig",
    "CorpusGenerator",
    "CorpusSpec",
    "DatasetKey",
    "content_fingerprint",
]
