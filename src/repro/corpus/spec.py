"""Corpus specifications: ship the recipe, not the world.

The engine's determinism contract says an :class:`~repro.corpus.datasets.AppCorpus`
is a pure function of its :class:`~repro.corpus.generator.CorpusConfig` —
seed plus per-dataset sizes decide everything the generator builds (PKI,
root stores, endpoint registry, apps).  A :class:`CorpusSpec` captures
exactly those inputs in a few dozen bytes, so a worker process can
rebuild a fingerprint-identical corpus locally instead of receiving a
multi-megabyte pickle of the parent's object graph through the pool
initializer.

The spec only covers generator-produced corpora.  A corpus whose
datasets were mutated after generation maps onto the same spec but would
rebuild differently; such corpora must travel by value (the engine's
``bootstrap="pickle"`` escape hatch) and are detected here by
:meth:`CorpusSpec.from_corpus` returning ``None`` whenever the dataset
shape is not one the generator could have produced.

:func:`shape_fingerprint` is the canonical corpus-identity digest — the
same value :func:`repro.core.exec.resultstore.corpus_fingerprint`
computes from a built corpus — so a spec can address result-store
entries and verify a rebuild without the parent corpus in hand.
:func:`content_fingerprint` is the deep variant: a digest over every
app's ground-truth fields, used by the parity gates to prove a rebuilt
world is not merely the same shape but the same world.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.corpus.datasets import AppCorpus, DATASET_NAMES, PLATFORMS
from repro.corpus.generator import CorpusConfig, CorpusGenerator

#: ``((platform, dataset), size)`` pairs, sorted by key — the shape half
#: of the corpus identity.
DatasetShape = Tuple[Tuple[Tuple[str, str], int], ...]


def dataset_shape(corpus: AppCorpus) -> DatasetShape:
    """The sorted per-dataset sizes of a built corpus."""
    return tuple(
        (key, len(apps)) for key, apps in sorted(corpus.datasets.items())
    )


def shape_fingerprint(seed: int, shape: DatasetShape) -> str:
    """SHA-256 of the corpus identity ``(seed, dataset shape)``.

    Must stay byte-compatible with
    :func:`repro.core.exec.resultstore.corpus_fingerprint`, which derives
    the same digest from a built corpus — result-store entries addressed
    by one must be reachable through the other.
    """
    identity = repr((int(seed), tuple(shape)))
    return hashlib.sha256(identity.encode("utf-8")).hexdigest()


def _spec_tuple(spec) -> tuple:
    """One pinning spec's stable ground-truth rendering."""
    resolved = tuple(
        (
            domain,
            rp.pinned_cert_cn,
            rp.pinned_cert_is_ca,
            tuple(rp.pin_strings),
            rp.pem,
            tuple(rp.fingerprints),
            rp.default_pki,
        )
        for domain, rp in sorted(spec.resolved.items())
    )
    return (
        tuple(spec.domains),
        spec.mechanism.name,
        spec.scope.name,
        spec.form.name,
        spec.source,
        spec.code_path,
        spec.dormant,
        spec.obfuscated,
        spec.skips_hostname_check,
        spec.nsc_override_pins,
        resolved,
    )


def _app_tuple(packaged) -> tuple:
    """One app's stable ground-truth rendering (order-independent sets)."""
    app = packaged.app
    return (
        app.app_id,
        app.name,
        app.platform,
        app.category,
        app.owner,
        app.store_rank,
        tuple(app.sdk_names),
        tuple(_spec_tuple(s) for s in app.pinning_specs),
        tuple(
            (
                u.hostname,
                u.start_offset_s,
                u.source,
                u.weak_ciphers,
                u.requires_interaction,
            )
            for u in app.behavior.usages
        ),
        tuple(app.associated_domains),
        app.uses_nsc,
        app.obfuscated_code,
        app.weak_system_stack,
        app.cross_platform_id,
    )


def content_fingerprint(corpus: AppCorpus) -> str:
    """A deep, process-independent digest of the generated world.

    Hashes every app's ground-truth fields plus the server side (registry
    hostnames, CT log size) — deliberately avoiding ``pickle`` and raw
    ``repr`` of sets, whose iteration order varies under hash
    randomization.  Two corpora with equal content fingerprints run to
    bit-for-bit identical study results.
    """
    digest = hashlib.sha256()
    digest.update(repr((int(corpus.seed), dataset_shape(corpus))).encode())
    for key, apps in sorted(corpus.datasets.items()):
        digest.update(repr(key).encode())
        for packaged in apps:
            digest.update(repr(_app_tuple(packaged)).encode())
    hostnames = sorted(e.hostname for e in corpus.registry)
    digest.update(repr((hostnames, corpus.registry.ctlog.size)).encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class CorpusSpec:
    """The few-dozen-byte identity of a generator-produced corpus.

    Semantically a :class:`CorpusConfig` plus the fingerprint machinery
    the execution engine needs: build, verify, and address a corpus
    without ever shipping one.
    """

    seed: int
    common: int
    popular: int
    random: int

    @classmethod
    def from_config(cls, config: CorpusConfig) -> "CorpusSpec":
        return cls(
            seed=config.seed,
            common=config.common,
            popular=config.popular,
            random=config.random,
        )

    @classmethod
    def from_corpus(cls, corpus: AppCorpus) -> Optional["CorpusSpec"]:
        """Derive the spec a corpus was generated from, or ``None``.

        ``None`` means the dataset shape is not one the generator
        produces (missing datasets, platform-asymmetric sizes, extra
        keys) — the caller must fall back to shipping the corpus by
        value.
        """
        if len(corpus.datasets) != len(DATASET_NAMES) * len(PLATFORMS):
            return None
        sizes = {}
        for name in DATASET_NAMES:
            per_platform = set()
            for platform in PLATFORMS:
                apps = corpus.datasets.get((platform, name))
                if apps is None:
                    return None
                per_platform.add(len(apps))
            if len(per_platform) != 1:
                return None
            sizes[name] = per_platform.pop()
        return cls(
            seed=int(corpus.seed),
            common=sizes["common"],
            popular=sizes["popular"],
            random=sizes["random"],
        )

    def config(self) -> CorpusConfig:
        return CorpusConfig(
            seed=self.seed,
            common=self.common,
            popular=self.popular,
            random=self.random,
        )

    def expected_shape(self) -> DatasetShape:
        """The dataset shape :meth:`build` will produce."""
        sizes = {
            "common": self.common,
            "popular": self.popular,
            "random": self.random,
        }
        return tuple(
            ((platform, name), sizes[name])
            for platform in sorted(PLATFORMS)
            for name in sorted(DATASET_NAMES)
        )

    def fingerprint(self) -> str:
        """The corpus fingerprint of the corpus this spec builds —
        computed without building it."""
        return shape_fingerprint(self.seed, self.expected_shape())

    def build(self) -> AppCorpus:
        """Regenerate the corpus this spec describes."""
        return CorpusGenerator(self.config()).generate()
