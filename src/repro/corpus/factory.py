"""App factory: turn an :class:`AppPlan` into a fully wired app.

The planner layers (:mod:`repro.corpus.generator`,
:mod:`repro.corpus.common`) decide *what* each app does — pinner or not,
which SDKs, which mechanism, which hosts are contacted where; the factory
materialises that decision: endpoints, resolved pinning specs, cold-start
behaviour and PII payload templates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.appmodel.app import MobileApp
from repro.appmodel.behavior import DestinationUsage, NetworkBehavior
from repro.appmodel.pinning import PinForm, PinMechanism, PinningSpec, PinScope
from repro.appmodel.sdk import sdk_by_name
from repro.corpus.naming import GENERIC_THIRD_PARTY_HOSTS, first_party_hosts
from repro.corpus.profiles import (
    BEHAVIOR_PROFILE,
    PII_PROFILE,
    PINNING_STYLES,
)
from repro.device.identifiers import placeholder
from repro.errors import CorpusError
from repro.pki.authority import PKIHierarchy
from repro.servers.registry import EndpointRegistry
from repro.util.rng import DeterministicRng


@dataclass
class ExtraUsage:
    """A planner-mandated destination beyond the defaults.

    Used by the Common-pair builder to engineer cross-platform
    (in)consistency: a host contacted pinned on one platform and unpinned
    (or not at all) on the other.
    """

    hostname: str
    pinned: bool = False
    source: str = "first-party"


@dataclass
class AppPlan:
    """Everything the planners decide about one app."""

    platform: str
    dataset: str
    index: int
    rank: int
    app_id: str
    name: str
    owner: str
    owner_slug: str
    category: str
    is_pinner: bool = False
    pin_first_party: bool = False
    pinning_sdks: List[str] = field(default_factory=list)
    dormant_pinning_sdks: List[str] = field(default_factory=list)
    embed_sdks: List[str] = field(default_factory=list)
    regular_sdks: List[str] = field(default_factory=list)
    nsc_mechanism: bool = False
    mechanism: PinMechanism = PinMechanism.OKHTTP
    scope: PinScope = PinScope.ROOT
    form: PinForm = PinForm.SPKI_SHA256
    obfuscate_first_party: bool = False
    weak_system: bool = False
    pinned_weak: bool = False
    uses_nsc_file: bool = False
    associated_domains: Tuple[str, ...] = ()
    cross_platform_id: str = ""
    first_party_host_list: Optional[List[str]] = None
    pinned_first_party_hosts: Optional[List[str]] = None
    extra_usages: List[ExtraUsage] = field(default_factory=list)
    # Common pairs: planner-specified hosts carry cross-platform
    # consistency semantics and must land inside the capture window.
    early_first_party: bool = False
    # The rare "pin everything" profile (Section 5.2: only 5 Android and
    # 4 iOS apps pinned every domain they contacted — AskURA, Bank of
    # America, CandyCrush, ...): the app contacts pinned domains only.
    pin_everything: bool = False
    # Misbehaviour knobs (Stone et al.; Possemato et al.).
    skip_hostname_check: bool = False
    nsc_misconfig: bool = False


class AppFactory:
    """Materialises apps inside one corpus world."""

    def __init__(
        self,
        registry: EndpointRegistry,
        hierarchy: PKIHierarchy,
        rng: DeterministicRng,
    ):
        self.registry = registry
        self.hierarchy = hierarchy
        self._rng = rng

    # -- endpoints ------------------------------------------------------------

    def _ensure_first_party_endpoint(
        self, hostname: str, owner: str, pinned: bool, rng: DeterministicRng
    ):
        """Create (or reuse) the endpoint for a first-party host.

        Pinned first-party destinations occasionally run a custom PKI or a
        bare self-signed certificate (Table 6 / Section 5.3.1).
        """
        if self.registry.knows(hostname):
            return self.registry.resolve(hostname)
        if pinned:
            style = PINNING_STYLES["android"]  # PKI-kind rates are shared
            draw = rng.random()
            if draw < style.self_signed_rate:
                return self.registry.create_self_signed_endpoint(
                    hostname, owner, lifetime_years=rng.choice([10.0, 27.0])
                )
            if draw < style.self_signed_rate + style.custom_pki_rate:
                authority = self.hierarchy.mint_custom_root(owner)
                return self.registry.create_custom_pki_endpoint(
                    hostname, owner, authority
                )
        return self.registry.create_default_pki_endpoint(hostname, owner)

    def _ensure_sdk_endpoints(self, sdk_name: str) -> None:
        sdk = sdk_by_name(sdk_name)
        if sdk is None:
            raise CorpusError(f"unknown SDK {sdk_name!r}")
        for host in sdk.domains:
            if not self.registry.knows(host):
                self.registry.create_default_pki_endpoint(host, sdk.name)

    # -- payload synthesis -------------------------------------------------------

    def _payload_fields(
        self, rng: DeterministicRng, pinned: bool, platform: str
    ) -> Tuple[Tuple[str, str], ...]:
        """Body fields for one destination, with calibrated PII rates."""
        fields: List[Tuple[str, str]] = [
            ("os", platform),
            ("sdk_version", f"{rng.randint(1, 9)}.{rng.randint(0, 20)}"),
            ("session", rng.hex_string(16)),
        ]
        profile = PII_PROFILE
        if pinned:
            ad_rate = (
                profile.ad_id_rate_pinned_ios
                if platform == "ios"
                else profile.ad_id_rate_pinned_android
            )
        else:
            ad_rate = profile.ad_id_rate_normal
        if rng.chance(ad_rate):
            fields.append(("ad_id", placeholder("ad_id")))
        email_rate = (
            profile.email_rate_pinned_android
            if pinned and platform == "android"
            else profile.email_rate_normal
        )
        if rng.chance(email_rate):
            fields.append(("email", placeholder("email")))
        if rng.chance(0.0 if pinned else profile.state_rate):
            fields.append(("state", placeholder("state")))
        if rng.chance(0.0 if pinned else profile.city_rate):
            fields.append(("city", placeholder("city")))
        if rng.chance(0.0 if pinned else profile.latlon_rate):
            fields.append(("lat", placeholder("latitude")))
            fields.append(("lon", placeholder("longitude")))
        if rng.chance(profile.imei_rate):
            fields.append(("imei", placeholder("imei")))
        if rng.chance(profile.mac_rate):
            fields.append(("wifi_mac", placeholder("mac")))
        return tuple(fields)

    def _draw_offset(self, rng: DeterministicRng, pinned: bool) -> float:
        """Connection start offset after launch.

        Pinned destinations are backend/config endpoints contacted
        immediately; unpinned traffic follows the calibrated bucket mix.
        """
        if pinned:
            return rng.uniform(0.0, 8.0)
        draw = rng.random()
        acc = 0.0
        for probability, lo, hi in BEHAVIOR_PROFILE.offset_buckets:
            acc += probability
            if draw <= acc:
                return rng.uniform(lo, hi)
        return rng.uniform(30.0, 60.0)

    def _make_usage(
        self,
        hostname: str,
        source: str,
        pinned: bool,
        plan: AppPlan,
        rng: DeterministicRng,
    ) -> DestinationUsage:
        lo, hi = BEHAVIOR_PROFILE.connections_per_destination
        used = rng.randint(lo, hi)
        redundant = 1 if rng.chance(BEHAVIOR_PROFILE.redundant_connection_rate) else 0
        return DestinationUsage(
            hostname=hostname,
            start_offset_s=self._draw_offset(rng, pinned),
            used_connections=used,
            redundant_connections=redundant,
            payload_fields=self._payload_fields(rng, pinned, plan.platform),
            source=source,
            weak_ciphers=pinned and plan.pinned_weak,
        )

    # -- main entry ------------------------------------------------------------

    def build(self, plan: AppPlan) -> MobileApp:
        """Materialise one app from its plan.

        Raises:
            CorpusError: for invalid plans (unknown SDKs, pinner without a
                pinning source).
        """
        rng = self._rng.child("app", plan.platform, plan.dataset, plan.index)

        fp_hosts = plan.first_party_host_list or first_party_hosts(
            plan.owner_slug, rng.randint(2, 3)
        )
        if plan.pin_first_party:
            pinned_fp = plan.pinned_first_party_hosts or [fp_hosts[0]]
        else:
            pinned_fp = []
        for host in fp_hosts:
            # NSC pin-sets presume default-PKI validation, so NSC pinners
            # never get custom-PKI backends.
            allow_custom = host in pinned_fp and not plan.nsc_mechanism
            self._ensure_first_party_endpoint(
                host, plan.owner, allow_custom, rng.child("fp", host)
            )

        specs: List[PinningSpec] = []
        usages: List[DestinationUsage] = []

        # First-party pinning spec.  NSC pin-sets live in a plain XML
        # resource — code obfuscation cannot hide them.
        if pinned_fp:
            mechanism = PinMechanism.NSC if plan.nsc_mechanism else plan.mechanism
            spec = PinningSpec(
                domains=tuple(pinned_fp),
                mechanism=mechanism,
                scope=plan.scope,
                form=plan.form,
                source="first-party",
                obfuscated=plan.obfuscate_first_party and not plan.nsc_mechanism,
                skips_hostname_check=plan.skip_hostname_check
                and not plan.nsc_mechanism,
            )
            for host in pinned_fp:
                endpoint = self.registry.resolve(host)
                spec.resolve_domain(
                    host, endpoint.chain, default_pki=endpoint.pki_kind == "default"
                )
            specs.append(spec)

        # The NSC overridePins misconfiguration: a second domain-config
        # whose pin-set is neutralised by a trust-anchor override.  The
        # pins are statically visible but never enforced.
        if plan.nsc_misconfig and plan.nsc_mechanism:
            legacy_host = f"legacy.{plan.owner_slug}.com"
            self._ensure_first_party_endpoint(
                legacy_host, plan.owner, False, rng.child("legacy")
            )
            misconfig = PinningSpec(
                domains=(legacy_host,),
                mechanism=PinMechanism.NSC,
                scope=plan.scope,
                source="first-party",
                nsc_override_pins=True,
            )
            misconfig.resolve_domain(
                legacy_host, self.registry.resolve(legacy_host).chain
            )
            specs.append(misconfig)
            usages.append(
                self._make_usage(
                    legacy_host, "first-party", False, plan, rng.child("u-legacy")
                )
            )

        # SDK pinning specs (active and dormant).
        for sdk_name in plan.pinning_sdks + plan.dormant_pinning_sdks:
            sdk = sdk_by_name(sdk_name)
            if sdk is None:
                raise CorpusError(f"unknown SDK {sdk_name!r}")
            self._ensure_sdk_endpoints(sdk_name)
            spec = sdk.make_pinning_spec(plan.platform)
            if spec is None:
                raise CorpusError(
                    f"{sdk_name!r} cannot pin on {plan.platform}"
                )
            if sdk_name in plan.dormant_pinning_sdks or sdk.dormant_on(plan.platform):
                spec.dormant = True
            for host in spec.domains:
                spec.resolve_domain(host, self.registry.resolve(host).chain)
            specs.append(spec)

        # Extra (planner-mandated) destinations, possibly pinned.
        for extra in plan.extra_usages:
            if not self.registry.knows(extra.hostname):
                self._ensure_first_party_endpoint(
                    extra.hostname,
                    plan.owner,
                    extra.pinned and not plan.nsc_mechanism,
                    rng.child("x", extra.hostname),
                )
            if extra.pinned:
                spec = PinningSpec(
                    domains=(extra.hostname,),
                    mechanism=PinMechanism.NSC if plan.nsc_mechanism else plan.mechanism,
                    scope=plan.scope,
                    form=plan.form,
                    source=extra.source,
                    obfuscated=plan.obfuscate_first_party
                    and not plan.nsc_mechanism,
                )
                endpoint = self.registry.resolve(extra.hostname)
                spec.resolve_domain(
                    extra.hostname,
                    endpoint.chain,
                    default_pki=endpoint.pki_kind == "default",
                )
                specs.append(spec)

        app = MobileApp(
            app_id=plan.app_id,
            name=plan.name,
            platform=plan.platform,
            category=plan.category,
            owner=plan.owner,
            store_rank=plan.rank,
            sdk_names=(
                plan.pinning_sdks
                + plan.dormant_pinning_sdks
                + plan.embed_sdks
                + plan.regular_sdks
            ),
            pinning_specs=specs,
            associated_domains=plan.associated_domains,
            uses_nsc=plan.uses_nsc_file or plan.nsc_mechanism,
            obfuscated_code=plan.obfuscate_first_party,
            weak_system_stack=plan.weak_system,
            cross_platform_id=plan.cross_platform_id,
        )

        # -- behaviour ---------------------------------------------------------
        for host in fp_hosts:
            usage = self._make_usage(
                host, "first-party", app.pins_domain(host), plan, rng.child("u", host)
            )
            if plan.early_first_party and usage.start_offset_s > 20.0:
                usage.start_offset_s = rng.child("early", host).uniform(0.0, 20.0)
            usages.append(usage)
        for extra in plan.extra_usages:
            usages.append(
                self._make_usage(
                    extra.hostname,
                    extra.source,
                    extra.pinned,
                    plan,
                    rng.child("u", extra.hostname),
                )
            )

        contacted = {u.hostname for u in usages}
        for sdk_name in app.sdk_names:
            sdk = sdk_by_name(sdk_name)
            if sdk is None:
                continue
            self._ensure_sdk_endpoints(sdk_name)
            is_dormant = (
                sdk_name in plan.dormant_pinning_sdks
                or (sdk.pins and sdk.dormant_on(plan.platform))
            )
            if is_dormant and not rng.chance(0.4):
                continue  # dormant SDK usually stays silent
            for host in sdk.domains:
                if host in contacted:
                    continue
                contacted.add(host)
                usages.append(
                    self._make_usage(
                        host, sdk.name, app.pins_domain(host), plan, rng.child("u", host)
                    )
                )

        for host, owner in rng.sample(
            GENERIC_THIRD_PARTY_HOSTS, rng.randint(1, 4)
        ):
            if host in contacted:
                continue
            contacted.add(host)
            if not self.registry.knows(host):
                self.registry.create_default_pki_endpoint(host, owner)
            usages.append(
                self._make_usage(host, owner, False, plan, rng.child("u", host))
            )

        if plan.pin_everything:
            usages = [u for u in usages if app.pins_domain(u.hostname)]
        elif rng.chance(0.18):
            # Interaction-gated traffic (login, checkout): invisible to
            # the study's no-interaction harness (§5.6), occasionally
            # hiding additional pinning (§5.7 future work).
            login_host = f"login.{plan.owner_slug}.com"
            hide_pin = plan.is_pinner and rng.chance(0.25)
            self._ensure_first_party_endpoint(
                login_host, plan.owner, False, rng.child("login")
            )
            if hide_pin:
                login_spec = PinningSpec(
                    domains=(login_host,),
                    mechanism=plan.mechanism,
                    scope=plan.scope,
                    form=plan.form,
                    source="first-party",
                )
                login_spec.resolve_domain(
                    login_host, self.registry.resolve(login_host).chain
                )
                specs.append(login_spec)
            login_usage = self._make_usage(
                login_host, "first-party", hide_pin, plan, rng.child("u-login")
            )
            login_usage.requires_interaction = True
            usages.append(login_usage)

        app.behavior = NetworkBehavior(usages)

        # Associated domains must resolve: the iOS verification daemon
        # contacts them at install time whether or not the app ever does.
        for domain in plan.associated_domains:
            if not self.registry.knows(domain):
                self.registry.create_default_pki_endpoint(domain, plan.owner)

        if plan.is_pinner and not app.pins_at_runtime():
            raise CorpusError(
                f"plan for {plan.app_id!r} designated a pinner but produced "
                f"no active pins"
            )
        return app
