"""Paper-calibrated generation profiles.

Every constant here traces to a number or a qualitative claim in the paper;
the comment on each says which.  The corpus generator treats these as
ground-truth *rates*; the pipelines must then re-discover them — the
reproduction succeeds when the measured tables match the shapes these
encode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.appmodel.pinning import PinForm, PinMechanism, PinScope


@dataclass(frozen=True)
class DatasetProfile:
    """Rates for one (platform, dataset) cell of Table 3.

    Attributes:
        dynamic_pin_rate: fraction of apps that actually pin at run time
            (Table 3, "Dynamic analysis" column).
        embedded_material_rate: fraction of apps whose package contains any
            certificate/pin material (Table 3, "Embedded Certificates").
        nsc_pin_rate: fraction of apps whose NSC file carries pins
            (Table 3, "Configuration Files"; Android only).
        nsc_usage_rate: fraction of apps shipping any NSC file (7.43 % of
            apps used NSCs in Oltrogge et al.; only a sliver pin).
        app_weak_cipher_rate: fraction of apps whose default stack
            advertises weak suites (Table 8, "Overall").
        pinned_weak_cipher_rate: probability a *pinned* destination's stack
            advertises weak suites (Table 8, "Pinning apps").
    """

    dynamic_pin_rate: float
    embedded_material_rate: float
    nsc_pin_rate: float
    nsc_usage_rate: float
    app_weak_cipher_rate: float
    pinned_weak_cipher_rate: float


#: Table 3 + Table 8, cell by cell.
DATASET_PROFILES: Dict[Tuple[str, str], DatasetProfile] = {
    ("android", "common"): DatasetProfile(
        dynamic_pin_rate=0.0817,       # 47/575
        embedded_material_rate=0.2696,  # 155/575
        nsc_pin_rate=0.0278,           # 16/575
        nsc_usage_rate=0.08,
        app_weak_cipher_rate=0.0835,   # Table 8 Common Android overall
        pinned_weak_cipher_rate=0.234,  # the Common-Android anomaly
    ),
    ("ios", "common"): DatasetProfile(
        dynamic_pin_rate=0.0852,       # 49/575
        embedded_material_rate=0.2296,  # 132/575
        nsc_pin_rate=0.0,
        nsc_usage_rate=0.0,
        app_weak_cipher_rate=0.9339,
        pinned_weak_cipher_rate=0.5577,
    ),
    ("android", "popular"): DatasetProfile(
        dynamic_pin_rate=0.067,        # 67/1000
        embedded_material_rate=0.197,
        nsc_pin_rate=0.018,
        nsc_usage_rate=0.075,
        app_weak_cipher_rate=0.183,
        pinned_weak_cipher_rate=0.0149,
    ),
    ("ios", "popular"): DatasetProfile(
        dynamic_pin_rate=0.114,        # 114/1000
        embedded_material_rate=0.334,
        nsc_pin_rate=0.0,
        nsc_usage_rate=0.0,
        app_weak_cipher_rate=0.952,
        pinned_weak_cipher_rate=0.4609,
    ),
    ("android", "random"): DatasetProfile(
        dynamic_pin_rate=0.009,        # 9/1000
        embedded_material_rate=0.099,
        nsc_pin_rate=0.006,
        nsc_usage_rate=0.06,
        app_weak_cipher_rate=0.031,
        pinned_weak_cipher_rate=0.0,
    ),
    ("ios", "random"): DatasetProfile(
        dynamic_pin_rate=0.025,        # 25/1000
        embedded_material_rate=0.095,
        nsc_pin_rate=0.0,
        nsc_usage_rate=0.0,
        app_weak_cipher_rate=0.826,
        pinned_weak_cipher_rate=0.5294,
    ),
}


@dataclass(frozen=True)
class PinningStyleProfile:
    """How pinning apps pin, per platform.

    Attributes:
        mechanism_weights: share of pinning *apps* per non-NSC mechanism;
            NSC share is injected separately from the dataset profile.
            Calibrated so Frida circumvention lands near the paper's
            ~51.5 % (Android) / ~66.2 % (iOS) of pinned destinations
            (Section 4.3) — custom TLS stacks resist hooking.
        scope_weights: which chain certificate is pinned.  Calibrated to
            Section 5.3.2: ~73 % CA certificates (root or intermediate),
            ~27 % leaves.
        form_weights: SPKI digests vs raw certificates.  Calibrated to
            Section 5.3.3: 24/30 leaf pins were SPKI pins.
        first_party_pin_rate: probability a pinning app pins (one of) its
            own backends, vs third-party-only pinning (Figure 5: most
            pinned destinations are third-party, but nearly every Android
            app that contacts first-party domains pins them).
        obfuscated_rate: pin material invisible to static analysis
            (run-time construction, string encryption).
        dormant_sdk_rate: probability a *non*-pinning app that embeds a
            pinning-capable SDK ships the material but never activates it
            (static-only evidence; part of the Table 3 static/dynamic gap).
        custom_pki_rate / self_signed_rate: per pinned first-party
            destination (Table 6: default PKI dominates; one self-signed
            case per platform).
        skips_hostname_rate: fraction of first-party pin implementations
            that skip standard hostname verification — the Stone et al.
            (Spinner) vulnerability class the paper builds on in §2.2.
        nsc_misconfig_rate: fraction of NSC pinners that additionally
            carry an ``overridePins="true"``-neutralised pin-set — the
            Possemato et al. misconfiguration.
    """

    mechanism_weights: Dict[PinMechanism, float]
    scope_weights: Dict[PinScope, float]
    form_weights: Dict[PinForm, float]
    first_party_pin_rate: float
    obfuscated_rate: float
    dormant_sdk_rate: float
    custom_pki_rate: float
    self_signed_rate: float
    skips_hostname_rate: float = 0.08
    nsc_misconfig_rate: float = 0.15


PINNING_STYLES: Dict[str, PinningStyleProfile] = {
    "android": PinningStyleProfile(
        # First-party mechanism mix.  Heavily custom: the hookable share of
        # unique pinned destinations also includes every NSC pin-set and
        # the (OkHttp-based) pinning SDKs, so landing near the paper's
        # 51.5 % circumvention rate requires most bespoke first-party
        # pinning to ride custom TLS stacks.
        mechanism_weights={
            PinMechanism.OKHTTP: 0.11,
            PinMechanism.CONSCRYPT: 0.04,
            PinMechanism.CUSTOM_TLS: 0.85,
        },
        scope_weights={
            PinScope.ROOT: 0.55,
            PinScope.INTERMEDIATE: 0.18,
            PinScope.LEAF: 0.27,
        },
        form_weights={
            PinForm.SPKI_SHA256: 0.74,
            PinForm.SPKI_SHA1: 0.06,
            PinForm.RAW_CERTIFICATE: 0.20,
        },
        first_party_pin_rate=0.45,
        obfuscated_rate=0.15,
        dormant_sdk_rate=0.4,
        custom_pki_rate=0.06,
        self_signed_rate=0.025,
    ),
    "ios": PinningStyleProfile(
        mechanism_weights={
            PinMechanism.TRUSTKIT: 0.21,
            PinMechanism.ALAMOFIRE: 0.17,
            PinMechanism.AFNETWORKING: 0.12,
            PinMechanism.URLSESSION: 0.22,
            PinMechanism.CUSTOM_TLS: 0.28,
        },
        scope_weights={
            PinScope.ROOT: 0.55,
            PinScope.INTERMEDIATE: 0.18,
            PinScope.LEAF: 0.27,
        },
        form_weights={
            PinForm.SPKI_SHA256: 0.76,
            PinForm.SPKI_SHA1: 0.04,
            PinForm.RAW_CERTIFICATE: 0.20,
        },
        first_party_pin_rate=0.55,
        obfuscated_rate=0.15,
        dormant_sdk_rate=0.4,
        custom_pki_rate=0.010,
        self_signed_rate=0.018,
    ),
}


@dataclass(frozen=True)
class CommonConsistencyProfile:
    """Cross-platform pinning structure for the Common dataset.

    Counts are for the paper's n = 575 and are scaled proportionally for
    other corpus sizes.  Source: Section 5.1 and Figures 2–4.
    """

    total_pinning_either: int = 69
    both_platforms: int = 27
    android_only: int = 20
    ios_only: int = 22
    # Within the 27 both-platform pinners:
    both_identical: int = 13          # same pinned domain set
    both_partial_consistent: int = 2  # overlap + extras unobserved cross-platform
    both_inconsistent: int = 6
    both_inconclusive: int = 6
    # Within exclusives: pinned domains observed unpinned on the other side
    # (inconsistent) vs never observed there (inconclusive).
    android_only_inconsistent: int = 10
    ios_only_inconsistent: int = 7


COMMON_CONSISTENCY = CommonConsistencyProfile()


@dataclass(frozen=True)
class BehaviorProfile:
    """Cold-start traffic shape.

    Calibrated to Section 4.2.1: a small random sample of apps performed
    20.78 / 23.5 / 24.62 TLS handshakes on average within 15 / 30 / 60 s —
    i.e. ~85 % of handshakes land in the first 15 seconds.
    """

    mean_destinations: float = 9.0
    min_destinations: int = 3
    max_destinations: int = 18
    connections_per_destination: Tuple[int, int] = (1, 3)
    redundant_connection_rate: float = 0.35
    offset_buckets: Tuple[Tuple[float, float, float], ...] = (
        # (probability, lo seconds, hi seconds)
        (0.84, 0.0, 10.0),
        (0.10, 10.0, 30.0),
        (0.06, 30.0, 60.0),
    )
    transient_failure_prob: float = 0.015


BEHAVIOR_PROFILE = BehaviorProfile()


@dataclass(frozen=True)
class PIIProfile:
    """Per-destination PII emission rates.

    Calibrated to Table 9: the advertising ID dominates (appearing in
    ~18–26 % of flows, slightly more on pinned destinations because those
    skew toward analytics/payment endpoints); everything else is rare.
    The pinned-rate bump is larger on iOS — the one statistically
    significant pinned-vs-non-pinned difference the paper reports.
    """

    ad_id_rate_pinned_ios: float = 0.29
    ad_id_rate_pinned_android: float = 0.215
    ad_id_rate_normal: float = 0.185
    email_rate_pinned_android: float = 0.010
    email_rate_normal: float = 0.005
    state_rate: float = 0.008
    city_rate: float = 0.006
    latlon_rate: float = 0.0008
    imei_rate: float = 0.001
    mac_rate: float = 0.001


PII_PROFILE = PIIProfile()
