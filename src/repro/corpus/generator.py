"""The corpus generator.

Builds the whole simulated world — PKI, root stores, server side — and the
six app datasets, calibrated by :mod:`repro.corpus.profiles`.  Exact
designation (weighted sampling of precisely ``round(rate * n)`` apps)
rather than per-app coin flips keeps dataset-level rates on target even
for small test corpora.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.appmodel.android import build_android_package
from repro.appmodel.ios import build_ios_package
from repro.appmodel.package import PackagingContext
from repro.appmodel.sdk import SDK_CATALOG, ThirdPartySDK, sdks_for_platform
from repro.corpus.categories import draw_category, pinning_multiplier
from repro.corpus.common import CommonPairPlanner
from repro.corpus.datasets import AppCorpus, DatasetKey
from repro.corpus.factory import AppFactory, AppPlan
from repro.corpus.naming import GENERIC_THIRD_PARTY_HOSTS, app_identity
from repro.corpus.profiles import DATASET_PROFILES, PINNING_STYLES
from repro.device.ios import APPLE_BACKGROUND_HOSTS
from repro.pki.authority import PKIHierarchy
from repro.pki.store import StoreCatalog
from repro.servers.registry import EndpointRegistry
from repro.util.rng import DeterministicRng


@dataclass(frozen=True)
class CorpusConfig:
    """Corpus dimensions and seed.

    Defaults reproduce the paper's scale (575 Common pairs, 1,000 Popular
    and 1,000 Random per platform — 5,079 unique apps counting Android and
    iOS separately, modulo the paper's store-collision artefacts).
    """

    seed: int = 2022
    common: int = 575
    popular: int = 1000
    random: int = 1000

    def scaled(self, factor: float) -> "CorpusConfig":
        """A proportionally smaller (or larger) corpus for tests."""
        return CorpusConfig(
            seed=self.seed,
            common=max(4, round(self.common * factor)),
            popular=max(4, round(self.popular * factor)),
            random=max(4, round(self.random * factor)),
        )


class CorpusGenerator:
    """Generates an :class:`AppCorpus` from a config."""

    def __init__(self, config: Optional[CorpusConfig] = None, seed: Optional[int] = None):
        if config is None:
            config = CorpusConfig(seed=seed if seed is not None else 2022)
        elif seed is not None:
            config = replace(config, seed=seed)
        self.config = config

    # -- world setup --------------------------------------------------------

    def _register_shared_endpoints(self, registry: EndpointRegistry) -> None:
        """Endpoints every app (or the OS) may contact."""
        for sdk in SDK_CATALOG:
            for host in sdk.domains:
                if not registry.knows(host):
                    registry.create_default_pki_endpoint(host, sdk.name)
        for host, owner in GENERIC_THIRD_PARTY_HOSTS:
            if not registry.knows(host):
                registry.create_default_pki_endpoint(host, owner)
        for host in APPLE_BACKGROUND_HOSTS:
            if not registry.knows(host):
                registry.create_default_pki_endpoint(host, "Apple")

    # -- per-dataset planning ---------------------------------------------------

    def _pinning_sdk_weights(
        self, platform: str, dataset: str
    ) -> Tuple[List[ThirdPartySDK], List[float]]:
        """Pinning-SDK selection pool and weights for a dataset.

        Random-iOS skews hard toward PayPal and Firestore — the paper's
        two common pinned destinations in that set; Random-Android pinners
        pinned no common destination, so SDK pinning is disabled there.
        """
        pool = [
            s
            for s in sdks_for_platform(platform)
            if s.pins and s.prevalence.get(platform, 0.0) > 0
        ]
        if platform == "android" and dataset == "random":
            return [], []
        weights = [s.prevalence.get(platform, 0.0) for s in pool]
        if platform == "ios" and dataset == "random":
            boost = {"Paypal": 14.0, "Firestore": 8.0}
            weights = [
                w * boost.get(s.name, 1.0) for s, w in zip(pool, weights)
            ]
        return pool, weights

    def _draw_regular_sdks(
        self, platform: str, dataset: str, category: str, rng: DeterministicRng
    ) -> List[str]:
        """Organic draws of common, non-cert-embedding SDKs."""
        scale = 0.5 if dataset == "random" else 1.0
        picked: List[str] = []
        for sdk in sdks_for_platform(platform):
            if sdk.pins or sdk.embeds_certificates:
                continue
            p = sdk.prevalence.get(platform, 0.0) * scale
            if category in sdk.category_affinity:
                p *= 1.6
            if rng.chance(min(p, 0.95)):
                picked.append(sdk.name)
        return picked

    def _style_draw(self, platform: str, rng: DeterministicRng) -> dict:
        style = PINNING_STYLES[platform]
        mechs = list(style.mechanism_weights)
        scopes = list(style.scope_weights)
        forms = list(style.form_weights)
        return {
            "mechanism": rng.weighted_choice(
                mechs, [style.mechanism_weights[m] for m in mechs]
            ),
            "scope": rng.weighted_choice(
                scopes, [style.scope_weights[s] for s in scopes]
            ),
            "form": rng.weighted_choice(
                forms, [style.form_weights[f] for f in forms]
            ),
            "obfuscated": rng.chance(style.obfuscated_rate),
        }

    def _plan_flat_dataset(
        self, platform: str, dataset: str, n: int, rng: DeterministicRng
    ) -> List[AppPlan]:
        """Plan a Popular or Random dataset for one platform."""
        profile = DATASET_PROFILES[(platform, dataset)]
        style = PINNING_STYLES[platform]

        plans: List[AppPlan] = []
        for i in range(n):
            id_rng = rng.child("identity", i)
            app_id, name, owner, owner_slug = app_identity(id_rng, platform, i)
            owner_slug = f"{dataset[:2]}{platform[:1]}{i}{owner_slug}"
            plans.append(
                AppPlan(
                    platform=platform,
                    dataset=dataset,
                    index=i,
                    rank=i + 1,
                    app_id=f"com.{owner_slug}.app",
                    name=name,
                    owner=owner,
                    owner_slug=owner_slug,
                    category=draw_category(platform, dataset, id_rng.child("cat")),
                    weak_system=id_rng.chance(profile.app_weak_cipher_rate),
                )
            )

        # -- designate pinners: exact count, category-weighted ----------------
        pinner_count = round(profile.dynamic_pin_rate * n)
        weights = [pinning_multiplier(p.category) for p in plans]
        pinners = rng.child("designate").weighted_sample(plans, weights, pinner_count)
        pinner_set = {p.index for p in pinners}

        sdk_pool, sdk_weights = self._pinning_sdk_weights(platform, dataset)

        for plan in plans:
            if plan.index not in pinner_set:
                continue
            p_rng = rng.child("pin", plan.index)
            plan.is_pinner = True
            plan.pinned_weak = p_rng.chance(profile.pinned_weak_cipher_rate)
            fields = self._style_draw(platform, p_rng.child("style"))
            plan.mechanism = fields["mechanism"]
            plan.scope = fields["scope"]
            plan.form = fields["form"]
            plan.obfuscate_first_party = fields["obfuscated"]
            plan.skip_hostname_check = p_rng.chance(style.skips_hostname_rate)

            plan.pin_first_party = p_rng.chance(style.first_party_pin_rate)
            if sdk_pool and p_rng.chance(0.78):
                count = 2 if p_rng.chance(0.25) else 1
                chosen = p_rng.weighted_sample(sdk_pool, sdk_weights, count)
                active = [
                    s.name for s in chosen if not s.dormant_on(platform)
                ]
                dormant = [s.name for s in chosen if s.dormant_on(platform)]
                plan.pinning_sdks = active
                plan.dormant_pinning_sdks.extend(dormant)
            # A sliver of pinners contact pinned domains exclusively
            # (Section 5.2 found 5 Android and 4 iOS such apps).
            if dataset == "popular" and p_rng.chance(0.05):
                plan.pin_everything = True
                plan.pin_first_party = True

            # Guarantee at least one *active* pinning source; prefer an SDK
            # (third-party pinned destinations dominate, Section 5.2).
            if not plan.pin_first_party and not plan.pinning_sdks:
                active_pool = [
                    (s, w)
                    for s, w in zip(sdk_pool, sdk_weights)
                    if not s.dormant_on(platform)
                ]
                if active_pool and p_rng.chance(0.6):
                    plan.pinning_sdks = [
                        p_rng.weighted_choice(
                            [s for s, _ in active_pool],
                            [w for _, w in active_pool],
                        ).name
                    ]
                else:
                    plan.pin_first_party = True

        self._assign_static_extras(plans, platform, dataset, rng)

        # iOS associated domains (66 % of apps specify none).
        for plan in plans:
            m_rng = rng.child("misc", plan.index)
            if platform == "ios" and m_rng.chance(0.34):
                hosts = [f"www.{plan.owner_slug}.com"]
                hosts += [
                    f"link{j}.{plan.owner_slug}.com"
                    for j in range(m_rng.randint(0, 7))
                ]
                plan.associated_domains = tuple(hosts)
        return plans

    def _assign_static_extras(
        self,
        plans: List[AppPlan],
        platform: str,
        dataset: str,
        rng: DeterministicRng,
    ) -> None:
        """Static-analysis-facing designations shared by all datasets:
        NSC mechanism/file usage, embedded-material apps, regular SDKs."""
        profile = DATASET_PROFILES[(platform, dataset)]
        style = PINNING_STYLES[platform]
        n = len(plans)
        pinner_plans = [p for p in plans if p.is_pinner]

        # NSC users among Android pinners: exact count.
        nsc_count = round(profile.nsc_pin_rate * n) if platform == "android" else 0
        nsc_chosen = rng.child("nsc").sample(
            pinner_plans, min(nsc_count, len(pinner_plans))
        )
        for plan in nsc_chosen:
            plan.nsc_mechanism = True
            plan.pin_first_party = True  # NSC pins are app-declared
        # Exact count of overridePins misconfigurations among NSC users.
        if nsc_chosen:
            misconfig_count = max(
                1, round(style.nsc_misconfig_rate * len(nsc_chosen))
            )
            for plan in rng.child("nscmis").sample(nsc_chosen, misconfig_count):
                plan.nsc_misconfig = True

        # -- designate embedded-material apps to hit the static target --------
        def statically_visible(plan: AppPlan) -> bool:
            if (
                plan.pin_first_party
                and not plan.obfuscate_first_party
                and not plan.nsc_mechanism
            ):
                return True
            for name in plan.pinning_sdks + plan.dormant_pinning_sdks:
                sdk = next(s for s in SDK_CATALOG if s.name == name)
                if not sdk.obfuscated_pins:
                    return True
            return bool(plan.embed_sdks)

        embed_target = round(profile.embedded_material_rate * n)
        visible = sum(1 for p in plans if statically_visible(p))
        needed = max(0, embed_target - visible)
        non_pinners = [p for p in plans if not p.is_pinner]
        embed_pool = [
            s
            for s in sdks_for_platform(platform)
            if s.embeds_certificates and not s.pins
        ]
        dormant_pool = [
            s
            for s in sdks_for_platform(platform)
            if s.pins and s.embeds_certificates and s.prevalence.get(platform, 0)
        ]
        chosen_embedders = rng.child("embed").sample(non_pinners, needed)
        for plan in chosen_embedders:
            e_rng = rng.child("embed", plan.index)
            if dormant_pool and e_rng.chance(style.dormant_sdk_rate):
                sdk = e_rng.weighted_choice(
                    dormant_pool,
                    [s.prevalence.get(platform, 0.001) for s in dormant_pool],
                )
                plan.dormant_pinning_sdks.append(sdk.name)
            elif embed_pool:
                sdk = e_rng.weighted_choice(
                    embed_pool,
                    [s.prevalence.get(platform, 0.001) for s in embed_pool],
                )
                plan.embed_sdks.append(sdk.name)

        # -- NSC files without pins (the prior-work population) ----------------
        if platform == "android":
            nsc_file_target = round(profile.nsc_usage_rate * n)
            extra = max(0, nsc_file_target - len(nsc_chosen))
            for plan in rng.child("nscfile").sample(
                [p for p in plans if not p.nsc_mechanism], extra
            ):
                plan.uses_nsc_file = True

        # -- regular SDK draws ----------------------------------------------------
        for plan in plans:
            m_rng = rng.child("sdkdraw", plan.index)
            plan.regular_sdks = self._draw_regular_sdks(
                platform, dataset, plan.category, m_rng
            )

    # -- main entry -------------------------------------------------------------

    def generate(self) -> AppCorpus:
        """Build the world and all six datasets."""
        cfg = self.config
        rng = DeterministicRng(cfg.seed)
        hierarchy = PKIHierarchy(rng.child("pki"))
        stores = StoreCatalog.build(hierarchy)
        registry = EndpointRegistry(hierarchy, rng.child("registry"))
        self._register_shared_endpoints(registry)

        factory = AppFactory(registry, hierarchy, rng.child("factory"))
        ctx = PackagingContext(
            public_root_pems=[c.to_pem() for c in hierarchy.root_certificates()],
            rng=rng.child("packaging"),
        )

        datasets: Dict[DatasetKey, List] = {}

        # Common pairs.
        pair_plans = CommonPairPlanner(rng.child("common")).build_plans(cfg.common)
        self._assign_static_extras(
            [a for a, _ in pair_plans], "android", "common", rng.child("xa")
        )
        self._assign_static_extras(
            [i for _, i in pair_plans], "ios", "common", rng.child("xi")
        )
        common_android, common_ios = [], []
        for android_plan, ios_plan in pair_plans:
            common_android.append(
                build_android_package(factory.build(android_plan), ctx)
            )
            common_ios.append(build_ios_package(factory.build(ios_plan), ctx))
        datasets[("android", "common")] = common_android
        datasets[("ios", "common")] = common_ios

        # Popular and Random per platform.
        sizes = {"popular": cfg.popular, "random": cfg.random}
        for dataset, n in sizes.items():
            for platform in ("android", "ios"):
                plans = self._plan_flat_dataset(
                    platform, dataset, n, rng.child("plan", platform, dataset)
                )
                packaged = []
                for plan in plans:
                    app = factory.build(plan)
                    if platform == "android":
                        packaged.append(build_android_package(app, ctx))
                    else:
                        packaged.append(build_ios_package(app, ctx))
                datasets[(platform, dataset)] = packaged

        return AppCorpus(
            seed=cfg.seed,
            hierarchy=hierarchy,
            stores=stores,
            registry=registry,
            datasets=datasets,
        )
