"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError` so callers
can catch library failures with a single except clause while letting
programming errors (``TypeError``, ``ValueError`` from stdlib misuse)
propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class PKIError(ReproError):
    """Base class for PKI-layer failures."""


class CertificateError(PKIError):
    """A certificate is malformed or fails an integrity check."""


class ChainValidationError(PKIError):
    """A certificate chain failed validation.

    Attributes:
        reason: short machine-readable reason code (e.g. ``"expired"``,
            ``"untrusted_root"``, ``"hostname_mismatch"``).
    """

    def __init__(self, message: str, reason: str = "invalid"):
        super().__init__(message)
        self.reason = reason


class EncodingError(PKIError):
    """PEM/DER-style payload could not be decoded."""


class TLSError(ReproError):
    """Base class for TLS-layer failures."""


class HandshakeError(TLSError):
    """A simulated TLS handshake failed.

    Attributes:
        alert: the :class:`repro.tls.alerts.AlertDescription` sent, if any.
    """

    def __init__(self, message: str, alert=None):
        super().__init__(message)
        self.alert = alert


class AppModelError(ReproError):
    """An app package is malformed or an operation on it is invalid."""


class PackageEncryptedError(AppModelError):
    """An iOS payload was accessed without decrypting it first."""


class DeviceError(ReproError):
    """Device emulation failure (install/launch/uninstall)."""


class CorpusError(ReproError):
    """Corpus generation or dataset construction failure."""


class AnalysisError(ReproError):
    """A core analysis stage received inconsistent inputs."""


class InstrumentationError(ReproError):
    """Frida-style instrumentation could not attach or hook."""
